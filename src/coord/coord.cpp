#include "coord/coord.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "coord/chunk_queue.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace bns::coord {
namespace {

// Patience for the reconnect probe after a mid-sweep transport failure.
// A killed daemon refuses instantly; anything longer just delays the
// failover of its remaining chunks to the surviving endpoints.
constexpr double kReconnectWaitSeconds = 0.5;

// --- Unix-domain-socket endpoint -------------------------------------------

class UnixEndpoint final : public Endpoint {
 public:
  explicit UnixEndpoint(std::string path) : path_(std::move(path)) {}
  ~UnixEndpoint() override { close(); }

  bool connect(double wait_seconds) override {
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) return false;
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(wait_seconds);
    for (;;) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) return false;
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        fd_ = fd;
        return true;
      }
      ::close(fd);
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  bool roundtrip(const std::string& request, std::string* response) override {
    if (fd_ < 0) return false;
    const std::string line = request + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(fd_, line.data() + off, line.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    // The connection is persistent: read exactly up to the newline and
    // keep any over-read (there is none in practice — the server
    // answers one line per request) for the next call.
    while (buf_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buf_.find('\n');
    *response = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return true;
  }

  void close() override {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }

 private:
  std::string path_;
  int fd_ = -1;
  std::string buf_;
};

struct Chunk {
  int id = 0;
  int base = 0;  // first scenario index
  int count = 0; // scenarios in this chunk
};

std::string chunk_request(const CoordOptions& opts, const Chunk& c,
                          const char* trace_id) {
  std::string out = "{\"op\":\"sweep_chunk\",\"model\":";
  obs::json_append_string(out, opts.model);
  out += ",\"chunk_id\":" + std::to_string(c.id);
  out += ",\"scenario_base\":" + std::to_string(c.base);
  out += ",\"vary_input\":" + std::to_string(opts.spec.vary_input);
  out += ",\"rho\":" + obs::json_number(opts.spec.rho);
  out += ",\"trace_id\":\"";
  out += trace_id;
  out += "\",\"specs\":[";
  for (int i = 0; i < c.count; ++i) {
    if (i > 0) out += ",";
    // The exact double the in-process sweep uses for this scenario;
    // %.17g survives the wire round-trip bit-for-bit.
    out += "{\"p\":" + obs::json_number(linear_scenario_p(
                           opts.spec, c.base + i)) +
           "}";
  }
  out += "]}";
  return out;
}

// Validates a sweep_chunk response against its chunk and extracts the
// records. False (with *err set) on any shape mismatch — a malformed
// answer is retried like a transport failure.
bool parse_chunk_response(const std::string& response, const Chunk& c,
                          std::vector<CoordRecord>* records,
                          std::string* err) {
  const std::optional<obs::JsonValue> doc = obs::json_parse(response);
  if (!doc || !doc->is_object()) {
    *err = "unparseable response";
    return false;
  }
  const obs::JsonValue* ok = doc->find("ok");
  if (!ok || !ok->is_bool() || !ok->as_bool()) {
    *err = "daemon error: " + doc->string_or("error", "(no error field)");
    return false;
  }
  if (static_cast<int>(doc->number_or("chunk_id", -1)) != c.id) {
    *err = "response chunk_id mismatch";
    return false;
  }
  const obs::JsonValue* recs = doc->find("records");
  if (!recs || !recs->is_array() ||
      static_cast<int>(recs->as_array().size()) != c.count) {
    *err = "response record count mismatch";
    return false;
  }
  records->clear();
  records->reserve(static_cast<std::size_t>(c.count));
  for (int i = 0; i < c.count; ++i) {
    const obs::JsonValue& r = recs->as_array()[static_cast<std::size_t>(i)];
    if (!r.is_object() ||
        static_cast<int>(r.number_or("scenario", -1)) != c.base + i ||
        !r.find("p") || !r.find("average_activity")) {
      *err = "malformed record " + std::to_string(i);
      return false;
    }
    CoordRecord rec;
    rec.scenario = c.base + i;
    rec.p = r.number_or("p", 0.0);
    rec.average_activity = r.number_or("average_activity", 0.0);
    rec.propagate_seconds = r.number_or("propagate_seconds", 0.0);
    records->push_back(rec);
  }
  return true;
}

bool ping(Endpoint& ep) {
  std::string resp;
  if (!ep.roundtrip("{\"op\":\"ping\"}", &resp)) return false;
  const std::optional<obs::JsonValue> doc = obs::json_parse(resp);
  if (!doc) return false;
  const obs::JsonValue* ok = doc->find("ok");
  return ok && ok->is_bool() && ok->as_bool();
}

} // namespace

std::unique_ptr<Endpoint> make_unix_endpoint(std::string socket_path) {
  return std::make_unique<UnixEndpoint>(std::move(socket_path));
}

CoordSweepResult coordinate_sweep(const CoordOptions& opts) {
  if (opts.sockets.empty()) {
    throw std::invalid_argument("coordinate_sweep: no endpoints");
  }
  if (opts.model.empty()) {
    throw std::invalid_argument("coordinate_sweep: no model");
  }
  if (opts.spec.scenarios < 1) {
    throw std::invalid_argument("coordinate_sweep: scenarios < 1");
  }
  const int num_endpoints = static_cast<int>(opts.sockets.size());
  const int scenarios = opts.spec.scenarios;

  // Chunk size: explicit, or aim for ~4 chunks per endpoint so a fast
  // endpoint has tails to steal without shrinking chunks so far that
  // the daemons lose incremental-reload locality.
  int chunk_scenarios = opts.chunk_scenarios;
  if (chunk_scenarios <= 0) {
    chunk_scenarios = std::max(1, scenarios / (4 * num_endpoints));
  }
  std::vector<Chunk> chunks;
  for (int base = 0, id = 0; base < scenarios; base += chunk_scenarios, ++id) {
    chunks.push_back(
        Chunk{id, base, std::min(chunk_scenarios, scenarios - base)});
  }
  const int num_chunks = static_cast<int>(chunks.size());
  const int max_attempts = opts.max_attempts > 0
                               ? opts.max_attempts
                               : std::max(3, 2 * num_endpoints);

  CoordSweepResult result;
  result.chunk_scenarios = chunk_scenarios;
  result.endpoints.resize(static_cast<std::size_t>(num_endpoints));
  for (int e = 0; e < num_endpoints; ++e) {
    result.endpoints[static_cast<std::size_t>(e)].socket =
        opts.sockets[static_cast<std::size_t>(e)];
  }
  result.chunks.resize(static_cast<std::size_t>(num_chunks));

  // Per-chunk trace ids, fixed across retries so every attempt's
  // daemon-side spans correlate to one chunk. An ambient trace context
  // (the coordinator called under a traced request) wins: the caller's
  // id flows through every chunk.
  const obs::TraceContext ambient = obs::current_trace_context();
  std::vector<std::uint64_t> trace_ids(static_cast<std::size_t>(num_chunks));
  for (int c = 0; c < num_chunks; ++c) {
    trace_ids[static_cast<std::size_t>(c)] =
        ambient.active() ? ambient.trace_id : obs::generate_trace_id();
    ChunkAccount& ca = result.chunks[static_cast<std::size_t>(c)];
    ca.chunk_id = c;
    ca.scenario_base = chunks[static_cast<std::size_t>(c)].base;
    ca.scenarios = chunks[static_cast<std::size_t>(c)].count;
  }

  // Endpoint transports: injected by tests, Unix sockets otherwise.
  std::vector<std::unique_ptr<Endpoint>> owned;
  std::vector<Endpoint*> endpoints(static_cast<std::size_t>(num_endpoints));
  if (opts.endpoints_override) {
    if (static_cast<int>(opts.endpoints_override->size()) != num_endpoints) {
      throw std::invalid_argument(
          "coordinate_sweep: endpoints_override size mismatch");
    }
    for (int e = 0; e < num_endpoints; ++e) {
      endpoints[static_cast<std::size_t>(e)] =
          (*opts.endpoints_override)[static_cast<std::size_t>(e)].get();
    }
  } else {
    for (int e = 0; e < num_endpoints; ++e) {
      owned.push_back(
          make_unix_endpoint(opts.sockets[static_cast<std::size_t>(e)]));
      endpoints[static_cast<std::size_t>(e)] = owned.back().get();
    }
  }

  // Fan-in target. Chunks are disjoint scenario ranges and the queue
  // grants each chunk to one worker at a time, so workers write
  // disjoint slices with no lock; the joins below publish them.
  std::vector<CoordRecord> merged(static_cast<std::size_t>(scenarios));
  std::vector<char> present(static_cast<std::size_t>(scenarios), 0);

  ChunkQueue queue(num_chunks, num_endpoints, max_attempts);
  Timer total;

  auto run_worker = [&](int e) {
    Timer t;
    EndpointAccount& acc = result.endpoints[static_cast<std::size_t>(e)];
    Endpoint& ep = *endpoints[static_cast<std::size_t>(e)];
    if (!ep.connect(opts.connect_wait_seconds)) {
      acc.retired = true;
      acc.wall_seconds = t.seconds();
      queue.retire(e);
      return;
    }
    std::vector<CoordRecord> recs;
    for (;;) {
      const ChunkGrant g = queue.next(e);
      if (g.done) break;
      const Chunk& c = chunks[static_cast<std::size_t>(g.chunk)];
      char tid[17];
      obs::format_trace_id(trace_ids[static_cast<std::size_t>(g.chunk)], tid);
      // Successive holders of one chunk are ordered through the queue
      // mutex, so this per-chunk accounting write is race-free.
      ChunkAccount& ca = result.chunks[static_cast<std::size_t>(g.chunk)];
      ca.attempts = g.attempt;
      ca.trace_id = tid;

      std::string resp;
      std::string err;
      const bool sent = ep.roundtrip(chunk_request(opts, c, tid), &resp);
      bool ok = false;
      if (!sent) {
        err = "connection to " + acc.socket + " failed";
      } else {
        ok = parse_chunk_response(resp, c, &recs, &err);
      }
      if (ok) {
        for (const CoordRecord& r : recs) {
          merged[static_cast<std::size_t>(r.scenario)] = r;
          present[static_cast<std::size_t>(r.scenario)] = 1;
        }
        ca.stolen = g.stolen;
        ca.endpoint = e;
        ++acc.chunks_served;
        if (g.stolen) ++acc.chunks_stolen;
        if (g.attempt > 1) ++acc.chunks_retried;
        acc.records += c.count;
        queue.complete(g.chunk);
        continue;
      }
      ++acc.failures;
      queue.fail(g.chunk, err);
      if (!sent) {
        // Transport failure: probe the daemon once. A dead daemon
        // retires this worker and its remaining block fails over to
        // the survivors, costing each chunk at most this one attempt.
        ep.close();
        if (!ep.connect(kReconnectWaitSeconds) || !ping(ep)) {
          acc.retired = true;
          acc.wall_seconds = t.seconds();
          queue.retire(e);
          return;
        }
      }
    }
    acc.wall_seconds = t.seconds();
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_endpoints));
  for (int e = 0; e < num_endpoints; ++e) {
    workers.emplace_back(run_worker, e);
  }
  for (std::thread& w : workers) w.join();

  result.wall_seconds = total.seconds();
  result.retries = queue.total_retries();
  for (const ChunkQueue::FailedChunk& f : queue.failed()) {
    const Chunk& c = chunks[static_cast<std::size_t>(f.chunk)];
    result.failed.push_back(
        ChunkFailure{c.id, c.base, c.count, f.attempts, f.last_error});
  }
  for (int s = 0; s < scenarios; ++s) {
    if (present[static_cast<std::size_t>(s)]) {
      result.records.push_back(merged[static_cast<std::size_t>(s)]);
    }
  }
  return result;
}

std::string coord_result_to_json(const CoordOptions& opts,
                                 const CoordSweepResult& res,
                                 const obs::ReportProvenance& prov,
                                 bool verified) {
  std::string out;
  auto kv = [&out](std::string_view k) {
    out += "  ";
    obs::json_append_string(out, k);
    out += ": ";
  };
  out += "{\n";
  kv("schema_version");
  out += std::to_string(kCoordSweepSchemaVersion) + ",\n";
  kv("provenance");
  out += "{\n";
  auto pkv = [&out](std::string_view k, std::string_view v, bool last = false) {
    out += "    ";
    obs::json_append_string(out, k);
    out += ": ";
    obs::json_append_string(out, v);
    out += last ? "\n" : ",\n";
  };
  pkv("circuit", prov.circuit);
  pkv("git_describe", prov.git_describe);
  pkv("build_type", prov.build_type);
  pkv("timestamp", prov.timestamp_iso8601);
  pkv("hostname", prov.hostname);
  out += "    \"threads\": " + std::to_string(prov.threads) + "\n  },\n";
  kv("sweep");
  out += "{\n";
  out += "    \"scenarios\": " + std::to_string(opts.spec.scenarios) + ",\n";
  out += "    \"vary_input\": " + std::to_string(opts.spec.vary_input) + ",\n";
  out += "    \"p_from\": " + obs::json_number(opts.spec.p_from) + ",\n";
  out += "    \"p_to\": " + obs::json_number(opts.spec.p_to) + ",\n";
  out += "    \"rho\": " + obs::json_number(opts.spec.rho) + ",\n";
  out += "    \"daemons\": " + std::to_string(res.endpoints.size()) + ",\n";
  out += "    \"chunks\": " + std::to_string(res.chunks.size()) + ",\n";
  out += "    \"chunk_scenarios\": " + std::to_string(res.chunk_scenarios) +
         ",\n";
  out += "    \"retries\": " + std::to_string(res.retries) + ",\n";
  out += "    \"failed_chunks\": " + std::to_string(res.failed.size()) + ",\n";
  out += "    \"wall_seconds\": " + obs::json_number(res.wall_seconds) + ",\n";
  out += std::string("    \"verified\": ") + (verified ? "true" : "false") +
         "\n  },\n";
  kv("endpoints");
  out += "[\n";
  for (std::size_t e = 0; e < res.endpoints.size(); ++e) {
    const EndpointAccount& a = res.endpoints[e];
    out += "    {\"socket\": ";
    obs::json_append_string(out, a.socket);
    out += ", \"chunks_served\": " + std::to_string(a.chunks_served);
    out += ", \"chunks_stolen\": " + std::to_string(a.chunks_stolen);
    out += ", \"chunks_retried\": " + std::to_string(a.chunks_retried);
    out += ", \"failures\": " + std::to_string(a.failures);
    out += ", \"records\": " + std::to_string(a.records);
    out += ", \"wall_seconds\": " + obs::json_number(a.wall_seconds);
    out += std::string(", \"retired\": ") + (a.retired ? "true" : "false") +
           "}";
    out += e + 1 < res.endpoints.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  kv("chunks");
  out += "[\n";
  for (std::size_t c = 0; c < res.chunks.size(); ++c) {
    const ChunkAccount& a = res.chunks[c];
    out += "    {\"chunk_id\": " + std::to_string(a.chunk_id);
    out += ", \"scenario_base\": " + std::to_string(a.scenario_base);
    out += ", \"scenarios\": " + std::to_string(a.scenarios);
    out += ", \"endpoint\": " + std::to_string(a.endpoint);
    out += ", \"attempts\": " + std::to_string(a.attempts);
    out += std::string(", \"stolen\": ") + (a.stolen ? "true" : "false");
    out += ", \"trace_id\": ";
    obs::json_append_string(out, a.trace_id);
    out += "}";
    out += c + 1 < res.chunks.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  kv("failed");
  out += "[\n";
  for (std::size_t f = 0; f < res.failed.size(); ++f) {
    const ChunkFailure& a = res.failed[f];
    out += "    {\"chunk_id\": " + std::to_string(a.chunk_id);
    out += ", \"scenario_base\": " + std::to_string(a.scenario_base);
    out += ", \"scenarios\": " + std::to_string(a.scenarios);
    out += ", \"attempts\": " + std::to_string(a.attempts);
    out += ", \"error\": ";
    obs::json_append_string(out, a.error);
    out += "}";
    out += f + 1 < res.failed.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  kv("records");
  out += "[\n";
  // The exact record line format of bns_sweep --json: a merged
  // multi-daemon sweep diffs clean against a single-process run.
  for (std::size_t s = 0; s < res.records.size(); ++s) {
    const CoordRecord& r = res.records[s];
    out += "    {\"scenario\": " + std::to_string(r.scenario) +
           ", \"p\": " + obs::json_number(r.p) + ", \"average_activity\": " +
           obs::json_number(r.average_activity) + ", \"propagate_seconds\": " +
           obs::json_number(r.propagate_seconds) + "}";
    out += s + 1 < res.records.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

} // namespace bns::coord
