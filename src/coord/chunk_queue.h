// Chunk scheduling for the multi-daemon sweep coordinator: which
// endpoint runs which contiguous block of scenarios, with work stealing
// and a per-chunk retry budget. Deliberately free of any socket or
// Session dependency so its scheduling policy is unit-testable with
// plain integers.
//
// Policy, in grant order for an endpoint asking for work:
//   1. the front of its own deque (chunks were dealt out as contiguous
//      blocks, so draining front-to-back preserves the scenario
//      locality the daemons' incremental batch engine exploits);
//   2. the shared retry deque (chunks whose previous attempt failed);
//   3. steal: move the tail half (ceil(n/2)) of the largest peer deque
//      into its own deque, then serve from that — a finished endpoint
//      takes the *later* scenarios of the slowest peer, so the peer
//      keeps the prefix adjacent to what it has already propagated.
// When nothing is grantable but chunks are still in flight elsewhere,
// next() blocks: an in-flight failure may yet requeue work.
//
// Every grant counts one attempt. fail() requeues the chunk until its
// attempt count reaches max_attempts, then settles it as failed with
// the last error — that is the "chunk fails everywhere" structured
// error the coordinator surfaces. retire() removes a dead endpoint's
// worker from the live count (its unserved deque is spliced onto the
// retry deque for the survivors); when the last live worker retires,
// every still-queued chunk settles as failed so nothing waits forever.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace bns::coord {

// One unit of work handed to an endpoint worker. done == true means no
// work is left and none can reappear: the worker should return.
struct ChunkGrant {
  bool done = false;
  int chunk = -1;
  int attempt = 0;    // 1 = first execution, >1 = retry
  bool stolen = false; // granted out of a block dealt to another endpoint
};

class ChunkQueue {
 public:
  // Deals `num_chunks` chunks as contiguous blocks across
  // `num_endpoints` deques (earlier endpoints get the earlier, at most
  // one-larger blocks). Each chunk may be attempted at most
  // `max_attempts` times (>= 1).
  ChunkQueue(int num_chunks, int num_endpoints, int max_attempts);

  // Blocks until there is a chunk for `endpoint` (own deque, retry
  // deque, or stolen), or all chunks are settled. Never returns the
  // same chunk to two workers at once.
  ChunkGrant next(int endpoint);

  // The granted chunk succeeded.
  void complete(int chunk);

  // The granted chunk failed at its current holder. Requeues it for
  // another attempt and returns true, unless the attempt budget is
  // spent — then the chunk settles as failed and this returns false.
  bool fail(int chunk, const std::string& error);

  // `endpoint`'s worker is exiting without draining its deque (its
  // daemon is unreachable). Remaining chunks move to the retry deque
  // (at no cost to their attempt budgets) for the surviving workers; if
  // no live workers remain, all queued chunks settle as failed.
  void retire(int endpoint);

  struct FailedChunk {
    int chunk = -1;
    int attempts = 0;
    std::string last_error;
  };

  // --- results; meaningful once all workers have returned -------------
  std::vector<FailedChunk> failed() const;
  int attempts(int chunk) const;
  // Total re-dispatches: sum over chunks of (attempts - 1).
  int total_retries() const;
  int live_endpoints() const;

 private:
  struct Queued {
    int chunk = -1;
    bool stolen = false;
  };
  enum class State : std::uint8_t { Queued, InFlight, Done, Failed };

  // All below guarded by mu_.
  bool grant_from(std::deque<Queued>& dq, int endpoint, ChunkGrant* out);
  void settle_all_queued_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const int num_chunks_;
  const int max_attempts_;
  std::vector<std::deque<Queued>> own_;  // per-endpoint dealt blocks
  std::deque<Queued> retry_;             // failed / orphaned chunks
  std::vector<State> state_;
  std::vector<int> attempts_;
  std::vector<std::string> last_error_;
  int settled_ = 0;
  int in_flight_ = 0;
  int live_ = 0;
};

} // namespace bns::coord
