// Distributed linear sweeps over a pool of bns_serve daemons.
//
// The coordinator splits a LinearSweepSpec's scenario range into
// contiguous chunks, dispatches them as `sweep_chunk` requests over
// Unix-domain sockets (one persistent connection and one worker thread
// per daemon), steals work from slow endpoints, retries failed chunks
// elsewhere, and fans the answers back in, reassembled in scenario
// order.
//
// Bitwise identity with a single-process sweep is the design center:
// chunk boundaries are computed with session::linear_scenario_p (the
// exact doubles make_linear_scenarios installs), shipped as %.17g
// strings (obs::json_number round-trips doubles exactly), and each
// daemon answers through the same Session::sweep batch engine whose
// results are bit-identical to sequential estimate() calls. So the
// merged record list is string-for-string identical to
// `bns_sweep --json` on the same model — asserted by the tool's
// --verify flag and the coord-smoke CI job, including with an endpoint
// killed mid-sweep.
//
// Tracing: each chunk carries a trace id on the wire (the ambient
// TraceContext's id when one is active, a fresh one per chunk
// otherwise), so daemon-side serve.request spans correlate with the
// coordinator's chunk accounting.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/report.h"
#include "session/session.h"

namespace bns::coord {

// Version of the merged-sweep JSON document (coord_result_to_json).
// Bump on any key rename/removal or semantic change; additions are
// backward compatible.
inline constexpr int kCoordSweepSchemaVersion = 1;

// Transport to one daemon. The default factory (make_unix_endpoint)
// speaks JSON lines over a Unix-domain socket; tests and future host
// transports implement the same interface.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  // (Re)establishes the connection, waiting up to wait_seconds for the
  // daemon to come up. False when the daemon stays unreachable.
  virtual bool connect(double wait_seconds) = 0;
  // One request line out, one response line (no trailing newline) in.
  // False on any transport failure; the connection is dead afterwards
  // until connect() succeeds again.
  virtual bool roundtrip(const std::string& request,
                         std::string* response) = 0;
  virtual void close() = 0;
};

std::unique_ptr<Endpoint> make_unix_endpoint(std::string socket_path);

struct CoordOptions {
  std::vector<std::string> sockets; // one bns_serve Unix socket each
  std::string model;                // model argument sent with every chunk
  LinearSweepSpec spec;
  // Scenarios per chunk; 0 = auto (aim for ~4 chunks per endpoint so
  // stealing has something to take, min 1 scenario each).
  int chunk_scenarios = 0;
  // Max attempts per chunk across all endpoints; 0 = auto
  // (2 * endpoints, min 3).
  int max_attempts = 0;
  // First-connect patience (daemon startup); reconnect probes after a
  // mid-sweep failure use a short fixed wait.
  double connect_wait_seconds = 10.0;
  // Test seam: overrides make_unix_endpoint, indexed like sockets.
  std::vector<std::unique_ptr<Endpoint>>* endpoints_override = nullptr;
};

// One merged sweep record — the same four fields, formatted by the
// same %.17g writer, as a bns_sweep --json record.
struct CoordRecord {
  int scenario = 0;
  double p = 0.0;
  double average_activity = 0.0;
  double propagate_seconds = 0.0;
};

struct EndpointAccount {
  std::string socket;
  int chunks_served = 0;  // chunks this endpoint completed
  int chunks_stolen = 0;  // completed chunks taken from a peer's block
  int chunks_retried = 0; // completed chunks that were re-dispatches
  int failures = 0;       // chunk attempts that failed here
  int records = 0;        // scenarios answered
  double wall_seconds = 0.0; // worker lifetime, connect to exit
  bool retired = false;   // gave up on an unreachable daemon
};

struct ChunkAccount {
  int chunk_id = 0;
  int scenario_base = 0;
  int scenarios = 0;
  int attempts = 0;
  bool stolen = false;
  int endpoint = -1;       // index into endpoints; -1 = never completed
  std::string trace_id;    // 16-hex wire form sent with the last attempt
};

struct ChunkFailure {
  int chunk_id = 0;
  int scenario_base = 0;
  int scenarios = 0;
  int attempts = 0;
  std::string error;
};

struct CoordSweepResult {
  // In scenario order; complete iff failed.empty(). On failure the
  // records of successful chunks are still present (gaps elided).
  std::vector<CoordRecord> records;
  std::vector<EndpointAccount> endpoints;
  std::vector<ChunkAccount> chunks;
  std::vector<ChunkFailure> failed;
  int chunk_scenarios = 0;
  int retries = 0;         // total re-dispatched attempts
  double wall_seconds = 0.0;

  bool ok() const { return failed.empty(); }
};

// Runs the distributed sweep. Throws std::invalid_argument on unusable
// options (no sockets, no model, scenarios < 1); endpoint and chunk
// failures are reported in the result, not thrown.
CoordSweepResult coordinate_sweep(const CoordOptions& opts);

// The schema-versioned merged document: provenance, sweep block (same
// spec keys as bns_sweep plus distribution counters), per-endpoint and
// per-chunk accounting, failed chunks, and the records array in
// bns_sweep's exact record format.
std::string coord_result_to_json(const CoordOptions& opts,
                                 const CoordSweepResult& res,
                                 const obs::ReportProvenance& prov,
                                 bool verified);

} // namespace bns::coord
