#include "coord/chunk_queue.h"

#include <algorithm>
#include <cassert>

namespace bns::coord {

ChunkQueue::ChunkQueue(int num_chunks, int num_endpoints, int max_attempts)
    : num_chunks_(num_chunks),
      max_attempts_(std::max(1, max_attempts)),
      own_(static_cast<std::size_t>(std::max(1, num_endpoints))),
      state_(static_cast<std::size_t>(num_chunks), State::Queued),
      attempts_(static_cast<std::size_t>(num_chunks), 0),
      last_error_(static_cast<std::size_t>(num_chunks)),
      live_(std::max(1, num_endpoints)) {
  // Deal contiguous blocks, earlier endpoints one larger when the
  // division is uneven — block boundaries are where incremental-reload
  // locality breaks, so blocks stay as even as possible.
  const int e = static_cast<int>(own_.size());
  const int base = num_chunks / e;
  const int extra = num_chunks % e;
  int next = 0;
  for (int i = 0; i < e; ++i) {
    const int take = base + (i < extra ? 1 : 0);
    for (int k = 0; k < take; ++k) {
      own_[static_cast<std::size_t>(i)].push_back(Queued{next++, false});
    }
  }
  assert(next == num_chunks_);
}

bool ChunkQueue::grant_from(std::deque<Queued>& dq, int /*endpoint*/,
                            ChunkGrant* out) {
  if (dq.empty()) return false;
  const Queued q = dq.front();
  dq.pop_front();
  state_[static_cast<std::size_t>(q.chunk)] = State::InFlight;
  ++in_flight_;
  const int att = ++attempts_[static_cast<std::size_t>(q.chunk)];
  *out = ChunkGrant{false, q.chunk, att, q.stolen};
  return true;
}

ChunkGrant ChunkQueue::next(int endpoint) {
  std::unique_lock<std::mutex> lock(mu_);
  auto& mine = own_[static_cast<std::size_t>(endpoint)];
  for (;;) {
    ChunkGrant g;
    if (grant_from(mine, endpoint, &g)) return g;
    if (grant_from(retry_, endpoint, &g)) return g;

    // Steal the tail half of the largest peer deque into our own, then
    // serve from it. Tail, not head: the victim keeps the scenarios
    // adjacent to the ones it has already propagated.
    std::size_t victim = own_.size();
    std::size_t best = 0;
    for (std::size_t i = 0; i < own_.size(); ++i) {
      if (i == static_cast<std::size_t>(endpoint)) continue;
      if (own_[i].size() > best) {
        best = own_[i].size();
        victim = i;
      }
    }
    if (victim < own_.size()) {
      auto& theirs = own_[victim];
      const std::size_t take = (theirs.size() + 1) / 2;
      for (std::size_t k = 0; k < take; ++k) {
        Queued q = theirs.back();
        theirs.pop_back();
        q.stolen = true;
        mine.push_front(q); // keep ascending chunk order in our deque
      }
      continue;
    }

    if (settled_ + in_flight_ == num_chunks_ || settled_ == num_chunks_) {
      if (settled_ == num_chunks_) return ChunkGrant{true, -1, 0, false};
      // Chunks are in flight on other workers; one may fail and
      // requeue. Wait for movement.
      cv_.wait(lock);
      continue;
    }
    // Unsettled, not in flight, but no deque holds it — impossible by
    // construction; wait defensively rather than spin.
    cv_.wait(lock);
  }
}

void ChunkQueue::complete(int chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  state_[static_cast<std::size_t>(chunk)] = State::Done;
  --in_flight_;
  ++settled_;
  cv_.notify_all();
}

bool ChunkQueue::fail(int chunk, const std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  last_error_[static_cast<std::size_t>(chunk)] = error;
  --in_flight_;
  if (attempts_[static_cast<std::size_t>(chunk)] < max_attempts_ &&
      live_ > 0) {
    state_[static_cast<std::size_t>(chunk)] = State::Queued;
    retry_.push_back(Queued{chunk, false});
    cv_.notify_all();
    return true;
  }
  state_[static_cast<std::size_t>(chunk)] = State::Failed;
  ++settled_;
  cv_.notify_all();
  return false;
}

void ChunkQueue::settle_all_queued_locked() {
  auto settle = [this](std::deque<Queued>& dq) {
    for (const Queued& q : dq) {
      state_[static_cast<std::size_t>(q.chunk)] = State::Failed;
      if (last_error_[static_cast<std::size_t>(q.chunk)].empty()) {
        last_error_[static_cast<std::size_t>(q.chunk)] =
            "no live endpoints remain";
      }
      ++settled_;
    }
    dq.clear();
  };
  for (auto& dq : own_) settle(dq);
  settle(retry_);
}

void ChunkQueue::retire(int endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  --live_;
  auto& mine = own_[static_cast<std::size_t>(endpoint)];
  if (live_ > 0) {
    // Hand the unserved block to the survivors. Attempt counts are
    // untouched: the chunks never ran here.
    while (!mine.empty()) {
      retry_.push_back(mine.front());
      mine.pop_front();
    }
  } else {
    settle_all_queued_locked();
  }
  cv_.notify_all();
}

std::vector<ChunkQueue::FailedChunk> ChunkQueue::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FailedChunk> out;
  for (int c = 0; c < num_chunks_; ++c) {
    if (state_[static_cast<std::size_t>(c)] == State::Failed) {
      out.push_back(FailedChunk{c, attempts_[static_cast<std::size_t>(c)],
                                last_error_[static_cast<std::size_t>(c)]});
    }
  }
  return out;
}

int ChunkQueue::attempts(int chunk) const {
  std::lock_guard<std::mutex> lock(mu_);
  return attempts_[static_cast<std::size_t>(chunk)];
}

int ChunkQueue::total_retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (int a : attempts_) n += std::max(0, a - 1);
  return n;
}

int ChunkQueue::live_endpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

} // namespace bns::coord
