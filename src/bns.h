// bns.h — single umbrella header for the public API surface.
//
// Examples and tools include this instead of reaching into per-layer
// headers, so internal reorganizations (like the src/obs/ split or the
// CompileStats/EstimateStats consolidation) do not ripple through every
// consumer. Library code must keep including the specific headers it
// needs — the umbrella is for the outermost consumers only.
//
// Covered layers: netlist I/O and transforms, input models + simulator,
// the LIDAG estimator and analyzer facade, the experiment harness, the
// reference estimators, static verification (src/verify/), and
// observability (src/obs/). The gen/ benchmark suite is included
// because every example and tool starts from make_benchmark().
#pragma once

// netlist
#include "netlist/bench_io.h"
#include "netlist/blif_io.h"
#include "netlist/gate.h"
#include "netlist/netlist.h"
#include "netlist/transforms.h"

// input models + simulation ground truth
#include "sim/input_model.h"
#include "sim/simulator.h"

// the estimator and its facade
#include "core/analyzer.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "lidag/estimator.h"
#include "lidag/lidag.h"

// reference estimators (paper baselines)
#include "baselines/correlation.h"
#include "baselines/independence.h"
#include "baselines/local_bdd.h"
#include "baselines/monte_carlo.h"
#include "baselines/transition_density.h"
#include "bdd/bdd_estimator.h"

// static verification
#include "verify/compile_rules.h"
#include "verify/diagnostics.h"
#include "verify/model_rules.h"
#include "verify/netlist_rules.h"
#include "verify/schedule_rules.h"

// observability
#include "obs/obs.h"

// benchmark circuits
#include "gen/benchmarks.h"
#include "gen/circuits.h"
#include "gen/generators.h"

// formatting helpers used by the examples
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
