// Reader/writer for the ISCAS-85 ".bench" netlist format:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//
// Gate definitions may reference signals defined later in the file; the
// reader topologically sorts them. Malformed input (unknown gate type,
// undefined signal, combinational cycle, duplicate definition) raises
// ParseError — these are user-data errors, not contract violations.
#pragma once

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "netlist/netlist.h"

namespace bns {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, int line)
      : std::runtime_error(what + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// Parses a .bench netlist. `name` becomes the Netlist name.
Netlist read_bench(std::istream& in, std::string name = "bench");
Netlist read_bench_string(std::string_view text, std::string name = "bench");
Netlist read_bench_file(const std::string& path);

// Emits .bench text. LUT nodes cannot be represented in .bench and raise
// std::invalid_argument.
void write_bench(const Netlist& nl, std::ostream& out);
std::string write_bench_string(const Netlist& nl);
void write_bench_file(const Netlist& nl, const std::string& path);

} // namespace bns
