// Structure-preserving netlist transforms.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace bns {

// A transformed netlist together with the mapping from the original
// node ids to the corresponding nodes of the transformed netlist.
struct MappedNetlist {
  Netlist netlist;
  std::vector<NodeId> map; // map[old_id] = new_id of the same line
};

// Rewrites every associative gate (AND/OR/XOR and inverted forms) with
// more than `max_fanin` inputs as a balanced tree of narrower gates of
// the same core function. Non-associative nodes (LUTs) are copied
// unchanged. Logic function of every original line is preserved.
MappedNetlist decompose_wide_gates(const Netlist& src, int max_fanin);

// Renumbers the nodes in depth-first *cone* order: for each primary
// output in turn, its transitive fanin is emitted in post-order. The
// result is still a valid topological order, but contiguous id ranges
// now correspond to output cones rather than to logic levels — the
// order in which range-based segmentation loses the least correlation.
// Nodes unreachable from any output are appended at the end.
MappedNetlist reorder_cone_dfs(const Netlist& src);

} // namespace bns
