// Dense single-output truth tables, used for general (LUT) gates parsed
// from BLIF and for deriving transition CPTs in the LIDAG builder.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/gate.h"

namespace bns {

// Truth table over n inputs, bit i holds f(minterm i) where input 0 is
// the least-significant bit of the minterm index.
class TruthTable {
 public:
  TruthTable() = default;

  // All-zero table over n inputs. Precondition: 0 <= n <= kMaxInputs.
  explicit TruthTable(int n_inputs);

  static constexpr int kMaxInputs = 16;

  // Table of a primitive gate with `n_inputs` fanins.
  static TruthTable of_gate(GateType t, int n_inputs);

  int num_inputs() const { return n_inputs_; }
  std::uint64_t num_rows() const { return 1ULL << n_inputs_; }

  bool value(std::uint64_t minterm) const;
  void set_value(std::uint64_t minterm, bool v);

  // Evaluates on explicit input bits (in[0] = input 0).
  bool eval(std::span<const bool> in) const;

  // 64-lane bit-parallel evaluation via Shannon cofactoring on the table.
  std::uint64_t eval_words(std::span<const std::uint64_t> in) const;

  // True if the function ignores input `i`.
  bool input_is_redundant(int i) const;

  // Cofactor with input i fixed to v (result has one fewer input; the
  // remaining inputs keep their relative order).
  TruthTable cofactor(int i, bool v) const;

  // "0101..."-style string, minterm 0 first.
  std::string to_string() const;

  bool operator==(const TruthTable& other) const = default;

 private:
  int n_inputs_ = 0;
  std::vector<std::uint64_t> bits_; // ceil(2^n / 64) words
};

} // namespace bns
