#include "netlist/transforms.h"

#include "util/assert.h"
#include "util/strings.h"

namespace bns {

MappedNetlist decompose_wide_gates(const Netlist& src, int max_fanin) {
  BNS_EXPECTS(max_fanin >= 2);
  MappedNetlist out;
  out.netlist.set_name(src.name());
  out.map.assign(static_cast<std::size_t>(src.num_nodes()), kInvalidNode);
  Netlist& nl = out.netlist;

  for (NodeId id = 0; id < src.num_nodes(); ++id) {
    const Node& n = src.node(id);
    NodeId mapped = kInvalidNode;
    switch (n.type) {
      case GateType::Input:
        mapped = nl.add_input(n.name);
        break;
      case GateType::Const0:
      case GateType::Const1:
        mapped = nl.add_const(n.name, n.type == GateType::Const1);
        break;
      case GateType::Lut: {
        std::vector<NodeId> fanin;
        for (NodeId f : n.fanin) fanin.push_back(out.map[static_cast<std::size_t>(f)]);
        mapped = nl.add_lut(n.name, std::move(fanin), *n.lut);
        break;
      }
      default: {
        std::vector<NodeId> layer;
        for (NodeId f : n.fanin) layer.push_back(out.map[static_cast<std::size_t>(f)]);
        if (static_cast<int>(layer.size()) <= max_fanin) {
          mapped = nl.add_gate(n.type, n.name, std::move(layer));
          break;
        }
        const GateType core = uninverted_core(n.type);
        BNS_ASSERT_MSG(is_associative(core),
                       "wide gate must have an associative core");
        int aux = 0;
        while (static_cast<int>(layer.size()) > max_fanin) {
          std::vector<NodeId> next;
          for (std::size_t i = 0; i < layer.size();
               i += static_cast<std::size_t>(max_fanin)) {
            const std::size_t hi = std::min(
                layer.size(), i + static_cast<std::size_t>(max_fanin));
            if (hi - i == 1) {
              next.push_back(layer[i]);
              continue;
            }
            next.push_back(nl.add_gate(
                core, strformat("%s#t%d", n.name.c_str(), aux++),
                std::vector<NodeId>(layer.begin() + static_cast<std::ptrdiff_t>(i),
                                    layer.begin() + static_cast<std::ptrdiff_t>(hi))));
          }
          layer = std::move(next);
        }
        mapped = nl.add_gate(n.type, n.name, std::move(layer));
        break;
      }
    }
    out.map[static_cast<std::size_t>(id)] = mapped;
    if (src.is_output(id)) nl.mark_output(mapped);
  }
  return out;
}

MappedNetlist reorder_cone_dfs(const Netlist& src) {
  const int n = src.num_nodes();
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);

  // Primary inputs first, in their original order: their relative order
  // defines the input-statistics mapping, and as exact-prior roots they
  // gain nothing from cone placement.
  for (NodeId in : src.inputs()) {
    visited[static_cast<std::size_t>(in)] = true;
    order.push_back(in);
  }

  // Iterative post-order DFS over fanins.
  auto visit = [&](NodeId root) {
    if (visited[static_cast<std::size_t>(root)]) return;
    std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
    visited[static_cast<std::size_t>(root)] = true;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const auto& fanin = src.node(id).fanin;
      if (next < fanin.size()) {
        const NodeId f = fanin[next];
        ++next;
        if (!visited[static_cast<std::size_t>(f)]) {
          visited[static_cast<std::size_t>(f)] = true;
          stack.emplace_back(f, 0);
        }
      } else {
        order.push_back(id);
        stack.pop_back();
      }
    }
  };
  for (NodeId out : src.outputs()) visit(out);
  for (NodeId id = 0; id < n; ++id) visit(id); // dangling logic

  MappedNetlist out;
  out.netlist.set_name(src.name());
  out.map.assign(static_cast<std::size_t>(n), kInvalidNode);
  for (NodeId id : order) {
    const Node& nd = src.node(id);
    NodeId mapped = kInvalidNode;
    switch (nd.type) {
      case GateType::Input:
        mapped = out.netlist.add_input(nd.name);
        break;
      case GateType::Const0:
      case GateType::Const1:
        mapped = out.netlist.add_const(nd.name, nd.type == GateType::Const1);
        break;
      case GateType::Lut: {
        std::vector<NodeId> fanin;
        for (NodeId f : nd.fanin) fanin.push_back(out.map[static_cast<std::size_t>(f)]);
        mapped = out.netlist.add_lut(nd.name, std::move(fanin), *nd.lut);
        break;
      }
      default: {
        std::vector<NodeId> fanin;
        for (NodeId f : nd.fanin) fanin.push_back(out.map[static_cast<std::size_t>(f)]);
        mapped = out.netlist.add_gate(nd.type, nd.name, std::move(fanin));
        break;
      }
    }
    out.map[static_cast<std::size_t>(id)] = mapped;
    if (src.is_output(id)) out.netlist.mark_output(mapped);
  }
  return out;
}

} // namespace bns
