#include "netlist/gate.h"

#include "util/assert.h"
#include "util/strings.h"

namespace bns {

std::string_view gate_type_name(GateType t) {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Lut: return "LUT";
  }
  BNS_ASSERT_MSG(false, "unreachable gate type");
  return "";
}

bool parse_gate_type(std::string_view name, GateType& out) {
  struct Entry {
    std::string_view name;
    GateType type;
  };
  static constexpr Entry kTable[] = {
      {"INPUT", GateType::Input}, {"CONST0", GateType::Const0},
      {"CONST1", GateType::Const1}, {"BUF", GateType::Buf},
      {"BUFF", GateType::Buf},    {"NOT", GateType::Not},
      {"INV", GateType::Not},     {"AND", GateType::And},
      {"NAND", GateType::Nand},   {"OR", GateType::Or},
      {"NOR", GateType::Nor},     {"XOR", GateType::Xor},
      {"XNOR", GateType::Xnor},   {"LUT", GateType::Lut},
  };
  for (const auto& e : kTable) {
    if (iequals(name, e.name)) {
      out = e.type;
      return true;
    }
  }
  return false;
}

bool is_associative(GateType t) {
  return t == GateType::And || t == GateType::Or || t == GateType::Xor;
}

GateType uninverted_core(GateType t) {
  switch (t) {
    case GateType::Nand: return GateType::And;
    case GateType::Nor: return GateType::Or;
    case GateType::Xnor: return GateType::Xor;
    case GateType::Not: return GateType::Buf;
    default: return t;
  }
}

bool is_inverting(GateType t) {
  return t == GateType::Nand || t == GateType::Nor || t == GateType::Xnor ||
         t == GateType::Not;
}

bool fanin_count_ok(GateType t, std::size_t n_fanin) {
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return n_fanin == 0;
    case GateType::Buf:
    case GateType::Not:
      return n_fanin == 1;
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor:
      return n_fanin >= 1;
    case GateType::Lut:
      return true; // validated against the truth table instead
  }
  return false;
}

bool eval_gate(GateType t, std::span<const bool> in) {
  BNS_EXPECTS(fanin_count_ok(t, in.size()));
  switch (t) {
    case GateType::Const0: return false;
    case GateType::Const1: return true;
    case GateType::Buf: return in[0];
    case GateType::Not: return !in[0];
    case GateType::And:
    case GateType::Nand: {
      bool v = true;
      for (bool b : in) v = v && b;
      return t == GateType::And ? v : !v;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool v = false;
      for (bool b : in) v = v || b;
      return t == GateType::Or ? v : !v;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      bool v = false;
      for (bool b : in) v = v != b;
      return t == GateType::Xor ? v : !v;
    }
    case GateType::Input:
    case GateType::Lut:
      BNS_ASSERT_MSG(false, "eval_gate: not a primitive logic gate");
  }
  return false;
}

std::uint64_t eval_gate_words(GateType t, std::span<const std::uint64_t> in) {
  BNS_EXPECTS(fanin_count_ok(t, in.size()));
  switch (t) {
    case GateType::Const0: return 0;
    case GateType::Const1: return ~0ULL;
    case GateType::Buf: return in[0];
    case GateType::Not: return ~in[0];
    case GateType::And:
    case GateType::Nand: {
      std::uint64_t v = ~0ULL;
      for (std::uint64_t w : in) v &= w;
      return t == GateType::And ? v : ~v;
    }
    case GateType::Or:
    case GateType::Nor: {
      std::uint64_t v = 0;
      for (std::uint64_t w : in) v |= w;
      return t == GateType::Or ? v : ~v;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      std::uint64_t v = 0;
      for (std::uint64_t w : in) v ^= w;
      return t == GateType::Xor ? v : ~v;
    }
    case GateType::Input:
    case GateType::Lut:
      BNS_ASSERT_MSG(false, "eval_gate_words: not a primitive logic gate");
  }
  return 0;
}

} // namespace bns
