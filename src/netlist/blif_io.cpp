#include "netlist/blif_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "obs/trace.h"
#include "util/strings.h"

namespace bns {
namespace {

struct RawNames {
  std::vector<std::string> signals; // inputs..., output last
  std::vector<std::pair<std::string, char>> cubes; // (pattern, out value)
  int line = 0;
};

struct RawBlif {
  std::string model;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<RawNames> names;
};

// Reads logical lines, folding '\'-continuations and stripping comments.
std::vector<std::pair<std::string, int>> logical_lines(std::istream& in) {
  std::vector<std::pair<std::string, int>> out;
  std::string line;
  std::string acc;
  int lineno = 0;
  int acc_line = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::string_view s = trim(line);
    if (acc.empty()) acc_line = lineno;
    if (!s.empty() && s.back() == '\\') {
      acc += std::string(s.substr(0, s.size() - 1));
      acc += ' ';
      continue;
    }
    acc += std::string(s);
    if (!trim(acc).empty()) out.emplace_back(std::string(trim(acc)), acc_line);
    acc.clear();
  }
  if (!trim(acc).empty()) out.emplace_back(std::string(trim(acc)), acc_line);
  return out;
}

TruthTable cover_to_table(const RawNames& block) {
  const int n = static_cast<int>(block.signals.size()) - 1;
  if (n > TruthTable::kMaxInputs) {
    throw ParseError(".names with too many inputs", block.line);
  }
  // BLIF semantics: all cubes of one block share the same output value;
  // the function is the union of the cubes if that value is 1, or the
  // complement of the union if it is 0. An empty cover is constant 0.
  bool on_set = true;
  for (const auto& [pat, val] : block.cubes) {
    (void)pat;
    on_set = (val == '1');
    break;
  }
  TruthTable tt(n);
  for (std::uint64_t m = 0; m < tt.num_rows(); ++m) {
    bool in_union = false;
    for (const auto& [pat, val] : block.cubes) {
      (void)val;
      bool match = true;
      for (int i = 0; i < n && match; ++i) {
        const char c = pat[static_cast<std::size_t>(i)];
        const bool bit = (m >> i) & 1;
        if (c == '1' && !bit) match = false;
        if (c == '0' && bit) match = false;
      }
      if (match) {
        in_union = true;
        break;
      }
    }
    tt.set_value(m, on_set ? in_union : !in_union);
  }
  return tt;
}

Netlist build(const RawBlif& d, std::string fallback_name) {
  Netlist nl(d.model.empty() ? std::move(fallback_name) : d.model);
  std::unordered_map<std::string, NodeId> ids;
  std::unordered_map<std::string, int> block_of;
  for (int i = 0; i < static_cast<int>(d.names.size()); ++i) {
    const RawNames& b = d.names[static_cast<std::size_t>(i)];
    if (!block_of.emplace(b.signals.back(), i).second) {
      throw ParseError("signal defined twice: " + b.signals.back(), b.line);
    }
  }
  for (const std::string& in_name : d.inputs) {
    ids.emplace(in_name, nl.add_input(in_name));
  }

  enum class Mark : std::uint8_t { White, Grey, Black };
  std::unordered_map<std::string, Mark> mark;
  auto define = [&](const std::string& signal) {
    if (ids.count(signal)) return;
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(signal, 0);
    mark[signal] = Mark::Grey;
    while (!stack.empty()) {
      auto& [cur, next] = stack.back();
      const auto bit = block_of.find(cur);
      if (bit == block_of.end()) throw ParseError("undefined signal: " + cur, 0);
      const RawNames& b = d.names[static_cast<std::size_t>(bit->second)];
      const std::size_t n_in = b.signals.size() - 1;
      if (next < n_in) {
        const std::string& dep = b.signals[next];
        ++next;
        if (ids.count(dep)) continue;
        if (mark[dep] == Mark::Grey) {
          throw ParseError("combinational cycle through: " + dep, b.line);
        }
        mark[dep] = Mark::Grey;
        stack.emplace_back(dep, 0);
      } else {
        std::vector<NodeId> fanin;
        fanin.reserve(n_in);
        for (std::size_t i = 0; i < n_in; ++i) fanin.push_back(ids.at(b.signals[i]));
        ids.emplace(cur, nl.add_lut(cur, std::move(fanin), cover_to_table(b)));
        mark[cur] = Mark::Black;
        stack.pop_back();
      }
    }
  };

  for (const RawNames& b : d.names) define(b.signals.back());
  for (const std::string& out_name : d.outputs) {
    const auto it = ids.find(out_name);
    if (it == ids.end()) throw ParseError(".outputs of undefined signal: " + out_name, 0);
    nl.mark_output(it->second);
  }
  return nl;
}

} // namespace

Netlist read_blif(std::istream& in, std::string fallback_name) {
  obs::Span span(obs::global_tracer(), "parse");
  RawBlif d;
  RawNames* current = nullptr;
  bool seen_model = false;
  for (const auto& [line, lineno] : logical_lines(in)) {
    if (line[0] == '.') {
      const auto tok = split_ws(line);
      const std::string_view cmd = tok[0];
      current = nullptr;
      if (cmd == ".model") {
        if (seen_model) throw ParseError("multiple .model sections", lineno);
        seen_model = true;
        if (tok.size() > 1) d.model = std::string(tok[1]);
      } else if (cmd == ".inputs") {
        for (std::size_t i = 1; i < tok.size(); ++i) d.inputs.emplace_back(tok[i]);
      } else if (cmd == ".outputs") {
        for (std::size_t i = 1; i < tok.size(); ++i) d.outputs.emplace_back(tok[i]);
      } else if (cmd == ".names") {
        if (tok.size() < 2) throw ParseError(".names needs an output", lineno);
        RawNames b;
        b.line = lineno;
        for (std::size_t i = 1; i < tok.size(); ++i) b.signals.emplace_back(tok[i]);
        d.names.push_back(std::move(b));
        current = &d.names.back();
      } else if (cmd == ".end") {
        break;
      } else if (cmd == ".latch" || cmd == ".subckt" || cmd == ".gate") {
        throw ParseError("unsupported BLIF construct: " + std::string(cmd), lineno);
      } else {
        // Ignore unknown dot-commands (.default_input_arrival etc.).
      }
      continue;
    }
    if (current == nullptr) {
      throw ParseError("cover line outside .names block: " + line, lineno);
    }
    const auto tok = split_ws(line);
    const std::size_t n_in = current->signals.size() - 1;
    std::string pattern;
    char out_val = '1';
    if (n_in == 0) {
      if (tok.size() != 1 || tok[0].size() != 1) {
        throw ParseError("bad constant cover: " + line, lineno);
      }
      out_val = tok[0][0];
    } else {
      if (tok.size() != 2 || tok[0].size() != n_in || tok[1].size() != 1) {
        throw ParseError("bad cover line: " + line, lineno);
      }
      pattern = std::string(tok[0]);
      out_val = tok[1][0];
    }
    if (out_val != '0' && out_val != '1') {
      throw ParseError("cover output must be 0 or 1", lineno);
    }
    if (!current->cubes.empty() && current->cubes.front().second != out_val) {
      throw ParseError("mixed on-set/off-set cover", lineno);
    }
    current->cubes.emplace_back(std::move(pattern), out_val);
  }
  return build(d, std::move(fallback_name));
}

Netlist read_blif_string(std::string_view text, std::string fallback_name) {
  std::istringstream is{std::string(text)};
  return read_blif(is, std::move(fallback_name));
}

Netlist read_blif_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open file: " + path);
  return read_blif(f, path);
}

void write_blif(const Netlist& nl, std::ostream& out) {
  out << ".model " << nl.name() << "\n.inputs";
  for (NodeId id : nl.inputs()) out << ' ' << nl.node(id).name;
  out << "\n.outputs";
  for (NodeId id : nl.outputs()) out << ' ' << nl.node(id).name;
  out << '\n';
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) continue;
    const TruthTable tt =
        n.type == GateType::Lut
            ? *n.lut
            : TruthTable::of_gate(n.type, static_cast<int>(n.fanin.size()));
    out << ".names";
    for (NodeId f : n.fanin) out << ' ' << nl.node(f).name;
    out << ' ' << n.name << '\n';
    for (std::uint64_t m = 0; m < tt.num_rows(); ++m) {
      if (!tt.value(m)) continue;
      if (tt.num_inputs() == 0) {
        out << "1\n";
        continue;
      }
      for (int i = 0; i < tt.num_inputs(); ++i) {
        out << (((m >> i) & 1) ? '1' : '0');
      }
      out << " 1\n";
    }
  }
  out << ".end\n";
}

std::string write_blif_string(const Netlist& nl) {
  std::ostringstream os;
  write_blif(nl, os);
  return os.str();
}

void write_blif_file(const Netlist& nl, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open file for writing: " + path);
  write_blif(nl, f);
}

} // namespace bns
