// Reader for a combinational subset of the Berkeley BLIF format:
// .model/.inputs/.outputs/.names/.end with single-output SOP covers.
// Latches, subcircuits and multiple .model sections are rejected.
//
// Each .names block becomes a LUT node; blocks whose cover matches a
// primitive gate exactly are still stored as LUTs (the LIDAG builder
// treats both uniformly through the truth table).
#pragma once

#include <istream>
#include <string>

#include "netlist/bench_io.h" // ParseError
#include "netlist/netlist.h"

namespace bns {

Netlist read_blif(std::istream& in, std::string fallback_name = "blif");
Netlist read_blif_string(std::string_view text,
                         std::string fallback_name = "blif");
Netlist read_blif_file(const std::string& path);

// Writes the netlist as BLIF: one .names block per gate, with the
// on-set emitted as minterm cubes (compact covers are not attempted).
void write_blif(const Netlist& nl, std::ostream& out);
std::string write_blif_string(const Netlist& nl);
void write_blif_file(const Netlist& nl, const std::string& path);

} // namespace bns
