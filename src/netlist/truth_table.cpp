#include "netlist/truth_table.h"

#include "util/assert.h"

namespace bns {

TruthTable::TruthTable(int n_inputs) : n_inputs_(n_inputs) {
  BNS_EXPECTS(n_inputs >= 0 && n_inputs <= kMaxInputs);
  const std::uint64_t rows = 1ULL << n_inputs;
  bits_.assign((rows + 63) / 64, 0);
}

TruthTable TruthTable::of_gate(GateType t, int n_inputs) {
  BNS_EXPECTS(fanin_count_ok(t, static_cast<std::size_t>(n_inputs)));
  TruthTable tt(n_inputs);
  std::vector<bool> in(static_cast<std::size_t>(n_inputs));
  for (std::uint64_t m = 0; m < tt.num_rows(); ++m) {
    for (int i = 0; i < n_inputs; ++i) in[static_cast<std::size_t>(i)] = (m >> i) & 1;
    // span<const bool> cannot view vector<bool>; use a small buffer.
    bool buf[kMaxInputs];
    for (int i = 0; i < n_inputs; ++i) buf[i] = in[static_cast<std::size_t>(i)];
    tt.set_value(m, eval_gate(t, std::span<const bool>(buf, static_cast<std::size_t>(n_inputs))));
  }
  return tt;
}

bool TruthTable::value(std::uint64_t minterm) const {
  BNS_EXPECTS(minterm < num_rows());
  return (bits_[minterm >> 6] >> (minterm & 63)) & 1;
}

void TruthTable::set_value(std::uint64_t minterm, bool v) {
  BNS_EXPECTS(minterm < num_rows());
  const std::uint64_t mask = 1ULL << (minterm & 63);
  if (v) {
    bits_[minterm >> 6] |= mask;
  } else {
    bits_[minterm >> 6] &= ~mask;
  }
}

bool TruthTable::eval(std::span<const bool> in) const {
  BNS_EXPECTS(static_cast<int>(in.size()) == n_inputs_);
  std::uint64_t m = 0;
  for (int i = 0; i < n_inputs_; ++i) {
    if (in[static_cast<std::size_t>(i)]) m |= 1ULL << i;
  }
  return value(m);
}

std::uint64_t TruthTable::eval_words(std::span<const std::uint64_t> in) const {
  BNS_EXPECTS(static_cast<int>(in.size()) == n_inputs_);
  // For each lane, select the table row addressed by the lane's input
  // bits: out = OR over minterms m of (table[m] ? AND_i lit_i(m) : 0).
  std::uint64_t out = 0;
  for (std::uint64_t m = 0; m < num_rows(); ++m) {
    if (!value(m)) continue;
    std::uint64_t sel = ~0ULL;
    for (int i = 0; i < n_inputs_; ++i) {
      const std::uint64_t w = in[static_cast<std::size_t>(i)];
      sel &= ((m >> i) & 1) ? w : ~w;
    }
    out |= sel;
  }
  return out;
}

bool TruthTable::input_is_redundant(int i) const {
  BNS_EXPECTS(i >= 0 && i < n_inputs_);
  return cofactor(i, false) == cofactor(i, true);
}

TruthTable TruthTable::cofactor(int i, bool v) const {
  BNS_EXPECTS(i >= 0 && i < n_inputs_);
  TruthTable out(n_inputs_ - 1);
  for (std::uint64_t m = 0; m < out.num_rows(); ++m) {
    const std::uint64_t low = m & ((1ULL << i) - 1);
    const std::uint64_t high = (m >> i) << (i + 1);
    const std::uint64_t full = high | (static_cast<std::uint64_t>(v) << i) | low;
    out.set_value(m, value(full));
  }
  return out;
}

std::string TruthTable::to_string() const {
  std::string s;
  s.reserve(num_rows());
  for (std::uint64_t m = 0; m < num_rows(); ++m) s.push_back(value(m) ? '1' : '0');
  return s;
}

} // namespace bns
