// Gate-level combinational netlist.
//
// Each *node* is a signal line together with its driver (a primary
// input, a constant, or a gate over earlier-defined lines). This matches
// the paper's view where the random variables of interest are the
// switchings of the input lines and the gate output lines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.h"
#include "netlist/truth_table.h"

namespace bns {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

struct Node {
  std::string name;
  GateType type = GateType::Input;
  std::vector<NodeId> fanin;
  // Present iff type == GateType::Lut.
  std::optional<TruthTable> lut;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- construction -------------------------------------------------
  // Nodes must be added in topological order: every fanin id must refer
  // to an already-added node (enforced). Names must be unique.

  NodeId add_input(std::string name);
  NodeId add_const(std::string name, bool value);
  NodeId add_gate(GateType type, std::string name, std::vector<NodeId> fanin);
  NodeId add_lut(std::string name, std::vector<NodeId> fanin, TruthTable table);

  // Declares an existing node a primary output (idempotent).
  void mark_output(NodeId id);

  // --- access --------------------------------------------------------

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const;
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }
  bool is_output(NodeId id) const;

  // Number of nodes that are gates (everything except inputs/constants).
  int num_gates() const;

  // Node ids 0..num_nodes-1 are already a topological order by
  // construction; this returns that order explicitly.
  std::vector<NodeId> topological_order() const;

  // Logic depth of each node (inputs/constants at level 0).
  std::vector<int> levels() const;
  int depth() const;

  // fanout[i] = number of gate fanin slots fed by node i.
  std::vector<int> fanout_counts() const;

  // Reverse adjacency: for each node, the list of nodes it feeds.
  std::vector<std::vector<NodeId>> fanout_lists() const;

  // Looks up a node id by name; kInvalidNode if absent.
  NodeId find(std::string_view name) const;

  // Largest gate fanin in the design (0 if no gates).
  int max_fanin() const;

 private:
  NodeId add_node(Node n);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<bool> is_output_;
  std::unordered_map<std::string, NodeId> by_name_;
};

// Summary statistics used by the benchmark tables and the generators.
struct NetlistStats {
  int num_inputs = 0;
  int num_outputs = 0;
  int num_gates = 0;
  int num_nodes = 0;
  int depth = 0;
  int max_fanin = 0;
  double avg_fanin = 0.0;
  int max_fanout = 0;
  int reconvergent_nodes = 0; // nodes with fanout >= 2 (branching points)
};

NetlistStats compute_stats(const Netlist& nl);

} // namespace bns
