// Gate types and their Boolean semantics.
//
// The library models zero-delay combinational logic at the gate level,
// matching the abstraction of the paper (ISCAS-85 style netlists built
// from the primitive types below plus general LUTs parsed from BLIF).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace bns {

enum class GateType : std::uint8_t {
  Input,  // primary input; no fanin
  Const0, // constant 0; no fanin
  Const1, // constant 1; no fanin
  Buf,    // identity; 1 fanin
  Not,    // inversion; 1 fanin
  And,    // >= 1 fanin (associative)
  Nand,   // >= 1 fanin
  Or,     // >= 1 fanin (associative)
  Nor,    // >= 1 fanin
  Xor,    // >= 1 fanin (associative, parity)
  Xnor,   // >= 1 fanin (inverted parity)
  Lut,    // general truth table; fanin given by the table
};

// Human-readable, ISCAS-85-compatible name ("NAND", "INPUT", ...).
std::string_view gate_type_name(GateType t);

// Parses an ISCAS-85 gate keyword (case-insensitive; accepts BUFF as an
// alias for BUF). Returns true and sets `out` on success.
bool parse_gate_type(std::string_view name, GateType& out);

// True for gates whose n-ary form is the fold of the 2-ary form
// (AND/OR/XOR); their inverted versions NAND/NOR/XNOR are *not*
// associative but decompose as INV(fold).
bool is_associative(GateType t);

// The non-inverting core of a gate (NAND->And, NOR->Or, XNOR->Xor,
// Not->Buf); identity for other types.
GateType uninverted_core(GateType t);

// True if the gate is the inverted form of its core.
bool is_inverting(GateType t);

// Evaluates a primitive (non-Lut, non-Input) gate on scalar inputs.
// Preconditions: t is a logic gate; `in.size()` is valid for t.
bool eval_gate(GateType t, std::span<const bool> in);

// 64-way bit-parallel evaluation: each word carries 64 independent
// simulation lanes. Same preconditions as eval_gate.
std::uint64_t eval_gate_words(GateType t, std::span<const std::uint64_t> in);

// True if `n_fanin` is an acceptable fanin count for gate type t.
bool fanin_count_ok(GateType t, std::size_t n_fanin);

} // namespace bns
