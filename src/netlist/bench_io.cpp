#include "netlist/bench_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "obs/trace.h"
#include "util/assert.h"
#include "util/strings.h"

namespace bns {
namespace {

struct RawGate {
  std::string output;
  GateType type = GateType::Buf;
  std::vector<std::string> fanin;
  int line = 0;
};

struct RawDesign {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<RawGate> gates;
};

RawDesign scan(std::istream& in) {
  RawDesign d;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view s = trim(line);
    if (s.empty() || s.front() == '#') continue;

    auto inner = [&](std::string_view decl) -> std::string {
      const std::size_t open = decl.find('(');
      const std::size_t close = decl.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close <= open) {
        throw ParseError("malformed declaration: " + std::string(decl), lineno);
      }
      return std::string(trim(decl.substr(open + 1, close - open - 1)));
    };

    if (starts_with(to_upper(s.substr(0, 5)), "INPUT") && s.find('=') == std::string_view::npos) {
      d.inputs.push_back(inner(s));
      continue;
    }
    if (starts_with(to_upper(s.substr(0, 6)), "OUTPUT") && s.find('=') == std::string_view::npos) {
      d.outputs.push_back(inner(s));
      continue;
    }

    const std::size_t eq = s.find('=');
    if (eq == std::string_view::npos) {
      throw ParseError("expected `name = GATE(args)`: " + std::string(s), lineno);
    }
    RawGate g;
    g.line = lineno;
    g.output = std::string(trim(s.substr(0, eq)));
    std::string_view rhs = trim(s.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close <= open) {
      throw ParseError("malformed gate RHS: " + std::string(rhs), lineno);
    }
    const std::string_view type_name = trim(rhs.substr(0, open));
    if (!parse_gate_type(type_name, g.type)) {
      throw ParseError("unknown gate type: " + std::string(type_name), lineno);
    }
    if (g.type == GateType::Input || g.type == GateType::Lut) {
      throw ParseError("gate type not allowed on RHS: " + std::string(type_name),
                       lineno);
    }
    for (std::string_view arg : split(rhs.substr(open + 1, close - open - 1), ',')) {
      if (!arg.empty()) g.fanin.emplace_back(arg);
    }
    if (!fanin_count_ok(g.type, g.fanin.size())) {
      throw ParseError("bad fanin count for " + std::string(type_name), lineno);
    }
    d.gates.push_back(std::move(g));
  }
  return d;
}

Netlist build(const RawDesign& d, std::string name) {
  Netlist nl(std::move(name));

  std::unordered_map<std::string, NodeId> ids;
  std::unordered_map<std::string, int> gate_of; // signal -> index in d.gates
  for (int i = 0; i < static_cast<int>(d.gates.size()); ++i) {
    const RawGate& g = d.gates[static_cast<std::size_t>(i)];
    if (!gate_of.emplace(g.output, i).second) {
      throw ParseError("signal defined twice: " + g.output, g.line);
    }
  }

  for (const std::string& in_name : d.inputs) {
    if (gate_of.count(in_name)) {
      throw ParseError("signal is both INPUT and gate output: " + in_name, 0);
    }
    if (ids.count(in_name)) throw ParseError("duplicate INPUT: " + in_name, 0);
    ids.emplace(in_name, nl.add_input(in_name));
  }

  // Iterative DFS topological insertion with cycle detection.
  enum class Mark : std::uint8_t { White, Grey, Black };
  std::unordered_map<std::string, Mark> mark;

  auto define = [&](const std::string& signal) {
    if (ids.count(signal)) return;
    std::vector<std::pair<std::string, std::size_t>> stack; // (signal, next fanin)
    stack.emplace_back(signal, 0);
    mark[signal] = Mark::Grey;
    while (!stack.empty()) {
      auto& [cur, next] = stack.back();
      const auto git = gate_of.find(cur);
      if (git == gate_of.end()) {
        throw ParseError("undefined signal: " + cur, 0);
      }
      const RawGate& g = d.gates[static_cast<std::size_t>(git->second)];
      if (next < g.fanin.size()) {
        const std::string& dep = g.fanin[next];
        ++next;
        if (ids.count(dep)) continue;
        if (mark[dep] == Mark::Grey) {
          throw ParseError("combinational cycle through: " + dep, g.line);
        }
        mark[dep] = Mark::Grey;
        stack.emplace_back(dep, 0);
      } else {
        if (g.type == GateType::Const0 || g.type == GateType::Const1) {
          ids.emplace(cur, nl.add_const(cur, g.type == GateType::Const1));
        } else {
          std::vector<NodeId> fanin;
          fanin.reserve(g.fanin.size());
          for (const std::string& f : g.fanin) fanin.push_back(ids.at(f));
          ids.emplace(cur, nl.add_gate(g.type, cur, std::move(fanin)));
        }
        mark[cur] = Mark::Black;
        stack.pop_back();
      }
    }
  };

  for (const RawGate& g : d.gates) define(g.output);
  for (const std::string& out_name : d.outputs) {
    const auto it = ids.find(out_name);
    if (it == ids.end()) throw ParseError("OUTPUT of undefined signal: " + out_name, 0);
    nl.mark_output(it->second);
  }
  return nl;
}

} // namespace

Netlist read_bench(std::istream& in, std::string name) {
  obs::Span span(obs::global_tracer(), "parse");
  return build(scan(in), std::move(name));
}

Netlist read_bench_string(std::string_view text, std::string name) {
  std::istringstream is{std::string(text)};
  return read_bench(is, std::move(name));
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open file: " + path);
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return read_bench(f, std::move(name));
}

void write_bench(const Netlist& nl, std::ostream& out) {
  out << "# " << nl.name() << " — written by bns\n";
  for (NodeId id : nl.inputs()) out << "INPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.outputs()) out << "OUTPUT(" << nl.node(id).name << ")\n";
  out << '\n';
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) continue;
    if (n.type == GateType::Lut) {
      throw std::invalid_argument("LUT nodes cannot be written as .bench");
    }
    out << n.name << " = " << gate_type_name(n.type) << '(';
    for (std::size_t i = 0; i < n.fanin.size(); ++i) {
      if (i) out << ", ";
      out << nl.node(n.fanin[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(nl, os);
  return os.str();
}

void write_bench_file(const Netlist& nl, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open file for writing: " + path);
  write_bench(nl, f);
}

} // namespace bns
