#include "netlist/netlist.h"

#include <algorithm>
#include <numeric>

#include "util/assert.h"

namespace bns {

NodeId Netlist::add_node(Node n) {
  BNS_EXPECTS_MSG(!n.name.empty(), "node name must be non-empty");
  BNS_EXPECTS_MSG(by_name_.find(n.name) == by_name_.end(),
                  "duplicate node name");
  for (NodeId f : n.fanin) {
    BNS_EXPECTS_MSG(f >= 0 && f < num_nodes(),
                    "fanin must refer to an already-added node");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(n.name, id);
  nodes_.push_back(std::move(n));
  is_output_.push_back(false);
  return id;
}

NodeId Netlist::add_input(std::string name) {
  Node n;
  n.name = std::move(name);
  n.type = GateType::Input;
  const NodeId id = add_node(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_const(std::string name, bool value) {
  Node n;
  n.name = std::move(name);
  n.type = value ? GateType::Const1 : GateType::Const0;
  return add_node(std::move(n));
}

NodeId Netlist::add_gate(GateType type, std::string name,
                         std::vector<NodeId> fanin) {
  BNS_EXPECTS_MSG(type != GateType::Input && type != GateType::Lut &&
                      type != GateType::Const0 && type != GateType::Const1,
                  "use the dedicated add_* functions");
  BNS_EXPECTS(fanin_count_ok(type, fanin.size()));
  Node n;
  n.name = std::move(name);
  n.type = type;
  n.fanin = std::move(fanin);
  return add_node(std::move(n));
}

NodeId Netlist::add_lut(std::string name, std::vector<NodeId> fanin,
                        TruthTable table) {
  BNS_EXPECTS(static_cast<int>(fanin.size()) == table.num_inputs());
  Node n;
  n.name = std::move(name);
  n.type = GateType::Lut;
  n.fanin = std::move(fanin);
  n.lut = std::move(table);
  return add_node(std::move(n));
}

void Netlist::mark_output(NodeId id) {
  BNS_EXPECTS(id >= 0 && id < num_nodes());
  if (!is_output_[static_cast<std::size_t>(id)]) {
    is_output_[static_cast<std::size_t>(id)] = true;
    outputs_.push_back(id);
  }
}

const Node& Netlist::node(NodeId id) const {
  BNS_EXPECTS(id >= 0 && id < num_nodes());
  return nodes_[static_cast<std::size_t>(id)];
}

bool Netlist::is_output(NodeId id) const {
  BNS_EXPECTS(id >= 0 && id < num_nodes());
  return is_output_[static_cast<std::size_t>(id)];
}

int Netlist::num_gates() const {
  int n = 0;
  for (const Node& nd : nodes_) {
    if (nd.type != GateType::Input && nd.type != GateType::Const0 &&
        nd.type != GateType::Const1) {
      ++n;
    }
  }
  return n;
}

std::vector<NodeId> Netlist::topological_order() const {
  std::vector<NodeId> order(static_cast<std::size_t>(num_nodes()));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<int> Netlist::levels() const {
  std::vector<int> lvl(static_cast<std::size_t>(num_nodes()), 0);
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    int m = 0;
    for (NodeId f : n.fanin) m = std::max(m, lvl[static_cast<std::size_t>(f)] + 1);
    lvl[static_cast<std::size_t>(id)] = m;
  }
  return lvl;
}

int Netlist::depth() const {
  const auto lvl = levels();
  return lvl.empty() ? 0 : *std::max_element(lvl.begin(), lvl.end());
}

std::vector<int> Netlist::fanout_counts() const {
  std::vector<int> fo(static_cast<std::size_t>(num_nodes()), 0);
  for (const Node& n : nodes_) {
    for (NodeId f : n.fanin) ++fo[static_cast<std::size_t>(f)];
  }
  return fo;
}

std::vector<std::vector<NodeId>> Netlist::fanout_lists() const {
  std::vector<std::vector<NodeId>> fo(static_cast<std::size_t>(num_nodes()));
  for (NodeId id = 0; id < num_nodes(); ++id) {
    for (NodeId f : nodes_[static_cast<std::size_t>(id)].fanin) {
      fo[static_cast<std::size_t>(f)].push_back(id);
    }
  }
  return fo;
}

NodeId Netlist::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidNode : it->second;
}

int Netlist::max_fanin() const {
  int m = 0;
  for (const Node& n : nodes_) m = std::max(m, static_cast<int>(n.fanin.size()));
  return m;
}

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.num_inputs = nl.num_inputs();
  s.num_outputs = nl.num_outputs();
  s.num_gates = nl.num_gates();
  s.num_nodes = nl.num_nodes();
  s.depth = nl.depth();
  s.max_fanin = nl.max_fanin();

  std::size_t fanin_total = 0;
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    fanin_total += nl.node(id).fanin.size();
  }
  s.avg_fanin = s.num_gates == 0
                    ? 0.0
                    : static_cast<double>(fanin_total) / s.num_gates;

  const auto fo = nl.fanout_counts();
  for (int c : fo) {
    s.max_fanout = std::max(s.max_fanout, c);
    if (c >= 2) ++s.reconvergent_nodes;
  }
  return s;
}

} // namespace bns
