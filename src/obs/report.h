// RunReport: the schema-versioned run-report document emitted by
// `bns_report` and consumed by its --baseline compare mode and CI's
// regression gate.
//
// A report aggregates, for one circuit run:
//   - provenance (circuit, git describe, build type, timestamp, host,
//     thread count),
//   - compile-time and estimate-time accounting,
//   - the metrics registry (non-zero counters and histograms, including
//     the numerical-health probes), and
//   - an optional accuracy block (estimator vs Monte Carlo ground
//     truth: mean/max/RMS per-line error, error histogram, worst lines).
//
// Layering: obs is the bottom-most (std-only) library, so the report
// carries its own plain structs; higher layers (lidag, core, tools)
// copy their stats in. Serialization is JSON via obs/json.*; the text
// renderer shares the Table formatting path with the bench binaries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace bns::obs {

// Version of the run-report JSON document. Bump on any key
// rename/removal or semantic change; additions are backward compatible.
// (3 = first released report schema; it shares the version counter with
// the bench_update_time artifact, which moved from 2 to 3 when it
// gained provenance fields. 4 added the cost_model block: per-unit
// predicted vs observed propagation cost from the EWMA scheduler.)
inline constexpr int kReportSchemaVersion = 4;

struct ReportProvenance {
  std::string circuit;          // circuit name or file path
  std::string git_describe;     // `git describe --always --dirty` at configure
  std::string build_type;       // CMAKE_BUILD_TYPE (may be empty)
  std::string timestamp_iso8601; // UTC, e.g. 2026-08-05T12:34:56Z
  std::string hostname;
  int threads = 1;              // resolved worker-thread count
};

// Provenance for the current process: compiled-in BNS_GIT_DESCRIBE /
// BNS_BUILD_TYPE, gethostname(), and the current UTC time. The caller
// fills circuit/threads.
ReportProvenance default_provenance();

// "<tool> <git describe> (<build type>)" — the one provenance string
// every tool prints on --version, built from the same compiled-in
// fields the report emits.
std::string tool_version_line(std::string_view tool);

// Mirror of lidag::CompileStats (obs cannot include lidag headers).
struct ReportCompile {
  double compile_seconds = 0.0;
  double schedule_build_seconds = 0.0;
  int num_segments = 0;
  double total_state_space = 0.0;
  std::uint64_t max_clique_vars = 0;
  int total_bn_variables = 0;
  std::uint64_t fill_edges = 0;
};

// Mirror of lidag::EstimateStats plus the headline activity figure.
struct ReportEstimate {
  double propagate_seconds = 0.0; // min over the CLI's repeat runs
  double reload_seconds = 0.0;
  std::uint64_t messages_passed = 0;
  int threads_used = 1;
  double average_activity = 0.0;
};

struct ReportCounter {
  std::string name;
  std::uint64_t value = 0;
  bool gauge = false;
};

struct ReportHistogram {
  std::string name;
  std::vector<double> edges;
  // edges.size() + 1 entries; the final bucket is the overflow bucket.
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;

  static ReportHistogram from_snapshot(const HistogramSnapshot& snap);
};

// One row of the worst-N-lines attribution table.
struct ReportWorstLine {
  std::string line;
  double estimated = 0.0;
  double simulated = 0.0;
  double abs_error = 0.0;
};

// Per-segment slice of the error attribution: which segment's lines
// carry the error, localizing boundary-forwarding loss to a cut.
struct ReportSegmentError {
  int segment = -1; // estimator segment index; -1 = unowned lines
  int lines = 0;
  double mean_abs_error = 0.0;
  double max_abs_error = 0.0;
};

// Estimator-vs-simulator accuracy audit (paper-style error metrics).
// present() is false when the audit was skipped (--no-audit).
struct ReportAccuracy {
  std::uint64_t sim_pairs = 0; // Monte Carlo vector pairs simulated
  std::uint64_t seed = 0;
  int lines = 0;               // circuit lines compared
  double mean_abs_error = 0.0;
  double max_abs_error = 0.0;
  double rms_error = 0.0;
  ReportHistogram error_hist;  // per-line |error| distribution
  std::vector<ReportWorstLine> worst; // sorted by abs_error, descending
  // Per-segment breakdown, in segment order; empty when the audit ran
  // without access to the estimator's segmentation.
  std::vector<ReportSegmentError> per_segment;

  bool present() const { return lines > 0; }
};

// One SubtreeUnit's cost-model state after a run: the static prior or
// EWMA-smoothed prediction the scheduler sorted by, against the last
// observed wall time (0 when the unit never ran under timing).
struct ReportUnitCost {
  int segment = 0;        // estimator segment owning the unit
  int unit = 0;           // unit index within that segment's schedule
  double predicted_ns = 0.0;
  double observed_ns = 0.0;
  double table_cells = 0.0; // static size driving the prior
};

// Cost-model block (schema 4+). `units` keeps the top entries by
// observed_ns (bounded so reports stay small); `total_units` always
// records the full population so a capped table is visible as such.
struct ReportCostModel {
  int total_units = 0;
  std::vector<ReportUnitCost> units;

  bool present() const { return total_units > 0; }
};

struct RunReport {
  int schema_version = kReportSchemaVersion;
  ReportProvenance provenance;
  ReportCompile compile;
  ReportEstimate estimate;
  std::vector<ReportCounter> counters;   // non-zero counters only
  std::vector<ReportHistogram> histograms; // non-empty histograms only
  ReportAccuracy accuracy;
  ReportCostModel cost_model;

  // Copies non-zero counters and non-empty histograms out of `reg`.
  void set_metrics(const MetricsRegistry& reg);

  // Counter value by (snake_case) name; dflt when absent.
  std::uint64_t counter_or(std::string_view name, std::uint64_t dflt) const;

  // Pretty-printed JSON document (stable key order).
  std::string to_json() const;

  // Parses a document produced by to_json(). Rejects documents whose
  // schema_version is newer than this build understands; nullopt on any
  // parse/shape error.
  static std::optional<RunReport> from_json(std::string_view text);

  // Human-readable rendering (Table-based, same path as the benches).
  std::string render_text() const;
};

} // namespace bns::obs
