#include "obs/exposition.h"

#include <cstdio>

#include "obs/json.h"
#include "obs/report.h"

namespace bns::obs {
namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

// %g keeps bucket edges readable ("1e+06", not "1000000.000000").
std::string edge_str(double d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", d);
  return buf;
}

} // namespace

MetricsDocument make_metrics_document(const ServeMetrics* red,
                                      const MetricsRegistry* registry,
                                      double uptime_seconds) {
  MetricsDocument doc;
  doc.uptime_seconds = uptime_seconds;
  const ReportProvenance prov = default_provenance();
  doc.git_describe = prov.git_describe;
  doc.build_type = prov.build_type;
  doc.hostname = prov.hostname;
  if (red != nullptr) doc.serve = red->snapshot();
  if (registry != nullptr) doc.counters = registry->snapshot();
  return doc;
}

std::string render_metrics_json(const MetricsDocument& doc) {
  const std::span<const double> edges = hist_edges(Hist::RequestNs);
  std::string out = "{\"schema_version\":" + std::to_string(doc.schema_version);
  out += ",\"uptime_seconds\":" + json_number(doc.uptime_seconds);
  out += ",\"provenance\":{\"git_describe\":";
  json_append_string(out, doc.git_describe);
  out += ",\"build_type\":";
  json_append_string(out, doc.build_type);
  out += ",\"hostname\":";
  json_append_string(out, doc.hostname);
  out += "},\"ops\":[";
  for (int o = 0; o < kNumServeOps; ++o) {
    const ServeOpSnapshot& op = doc.serve.ops[static_cast<std::size_t>(o)];
    if (o != 0) out += ",";
    out += "{\"op\":\"";
    out += serve_op_name(static_cast<ServeOp>(o));
    out += "\",\"requests\":" + u64(op.requests);
    out += ",\"errors\":{";
    for (int e = 1; e < kNumErrorClasses; ++e) {
      if (e != 1) out += ",";
      out += "\"";
      out += error_class_name(static_cast<ErrorClass>(e));
      out += "\":" + u64(op.errors[static_cast<std::size_t>(e)]);
    }
    out += "},\"latency_ns\":{\"edges\":[";
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (i != 0) out += ",";
      out += json_number(edges[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i <= edges.size(); ++i) {
      if (i != 0) out += ",";
      out += u64(op.latency_counts[i]);
    }
    out += "],\"count\":" + u64(op.latency_total);
    out += "}}";
  }
  out += "],\"cache\":{";
  for (int e = 0; e < kNumCacheEvents; ++e) {
    if (e != 0) out += ",";
    out += "\"";
    out += cache_event_name(static_cast<CacheEvent>(e));
    out += "\":" + u64(doc.serve.cache[static_cast<std::size_t>(e)]);
  }
  out += "},\"counters\":[";
  bool first = true;
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::uint64_t v = doc.counters[static_cast<std::size_t>(i)];
    if (v == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += counter_name(c);
    out += "\",\"value\":" + u64(v);
    out += ",\"gauge\":";
    out += counter_is_gauge(c) ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

std::string render_metrics_prometheus(const MetricsDocument& doc) {
  const std::span<const double> edges = hist_edges(Hist::RequestNs);
  std::string out;
  out += "# HELP bns_serve_uptime_seconds Daemon uptime.\n";
  out += "# TYPE bns_serve_uptime_seconds gauge\n";
  out += "bns_serve_uptime_seconds " + json_number(doc.uptime_seconds) + "\n";

  out += "# HELP bns_serve_requests_total Requests answered, by op.\n";
  out += "# TYPE bns_serve_requests_total counter\n";
  for (int o = 0; o < kNumServeOps; ++o) {
    const ServeOpSnapshot& op = doc.serve.ops[static_cast<std::size_t>(o)];
    out += "bns_serve_requests_total{op=\"";
    out += serve_op_name(static_cast<ServeOp>(o));
    out += "\"} " + u64(op.requests) + "\n";
  }

  out += "# HELP bns_serve_errors_total Failed requests, by op and class.\n";
  out += "# TYPE bns_serve_errors_total counter\n";
  for (int o = 0; o < kNumServeOps; ++o) {
    const ServeOpSnapshot& op = doc.serve.ops[static_cast<std::size_t>(o)];
    for (int e = 1; e < kNumErrorClasses; ++e) {
      out += "bns_serve_errors_total{op=\"";
      out += serve_op_name(static_cast<ServeOp>(o));
      out += "\",class=\"";
      out += error_class_name(static_cast<ErrorClass>(e));
      out += "\"} " + u64(op.errors[static_cast<std::size_t>(e)]) + "\n";
    }
  }

  out += "# HELP bns_serve_request_duration_ns Request latency, by op.\n";
  out += "# TYPE bns_serve_request_duration_ns histogram\n";
  for (int o = 0; o < kNumServeOps; ++o) {
    const ServeOpSnapshot& op = doc.serve.ops[static_cast<std::size_t>(o)];
    const char* name = serve_op_name(static_cast<ServeOp>(o));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      cumulative += op.latency_counts[i];
      out += std::string("bns_serve_request_duration_ns_bucket{op=\"") +
             name + "\",le=\"" + edge_str(edges[i]) + "\"} " +
             u64(cumulative) + "\n";
    }
    out += std::string("bns_serve_request_duration_ns_bucket{op=\"") + name +
           "\",le=\"+Inf\"} " + u64(op.latency_total) + "\n";
    out += std::string("bns_serve_request_duration_ns_count{op=\"") + name +
           "\"} " + u64(op.latency_total) + "\n";
  }

  out += "# HELP bns_serve_cache_events_total Session-cache outcomes.\n";
  out += "# TYPE bns_serve_cache_events_total counter\n";
  for (int e = 0; e < kNumCacheEvents; ++e) {
    out += "bns_serve_cache_events_total{event=\"";
    out += cache_event_name(static_cast<CacheEvent>(e));
    out += "\"} " + u64(doc.serve.cache[static_cast<std::size_t>(e)]) + "\n";
  }

  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::uint64_t v = doc.counters[static_cast<std::size_t>(i)];
    if (v == 0) continue;
    out += std::string("# TYPE bns_") + counter_name(c) +
           (counter_is_gauge(c) ? " gauge\n" : " counter\n");
    out += std::string("bns_") + counter_name(c) + " " + u64(v) + "\n";
  }
  return out;
}

} // namespace bns::obs
