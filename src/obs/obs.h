// Umbrella header for the observability subsystem: metrics registry
// (counters + histograms), tracer/spans, stock sinks, and the run-report
// builder. See DESIGN.md "Observability" for the levels and the
// overhead contract, and "Run reports" for the report schema.
#pragma once

#include "obs/exposition.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/sinks.h"
#include "obs/table.h"
#include "obs/trace.h"
