// Umbrella header for the observability subsystem: metrics registry,
// tracer/spans, and the stock sinks. See DESIGN.md "Observability" for
// the levels and the overhead contract.
#pragma once

#include "obs/metrics.h"
#include "obs/sinks.h"
#include "obs/trace.h"
