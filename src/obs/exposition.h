// Metrics exposition: turns a merged telemetry snapshot into the two
// formats the outside world consumes — a schema-versioned JSON document
// (the daemon's {"op":"metrics"} payload, re-renderable by bns_report)
// and a Prometheus-style text rendering for scrape pipelines.
//
// Everything here is assembly/formatting over plain value snapshots;
// the lock-free recording side lives in obs/metrics.h (ServeMetrics).
#pragma once

#include <string>

#include "obs/metrics.h"

namespace bns::obs {

// Version of the metrics JSON document. Bump on any key rename/removal
// or semantic change; additions are backward compatible.
inline constexpr int kMetricsSchemaVersion = 1;

// One scrape's worth of daemon telemetry, merged and immutable.
struct MetricsDocument {
  int schema_version = kMetricsSchemaVersion;
  double uptime_seconds = 0.0;
  // Build provenance, same fields RunReport stamps (obs/report.h).
  std::string git_describe;
  std::string build_type;
  std::string hostname;
  ServeMetricsSnapshot serve;    // per-op RED + cache events
  MetricsSnapshot counters{};    // the flat pipeline registry
};

// Fills uptime/provenance/serve/counters from live sources. `red` and
// the registry may be null (zeros); uptime is seconds since `epoch_ns`
// against `now_ns` (caller-supplied monotonic pair).
MetricsDocument make_metrics_document(const ServeMetrics* red,
                                      const MetricsRegistry* registry,
                                      double uptime_seconds);

// Compact single-line JSON (the JSON-lines protocol embeds it verbatim
// in a response, so it must not contain newlines):
//   {"schema_version":1,"uptime_seconds":..,"provenance":{...},
//    "ops":[{"op":"estimate","requests":..,"errors":{...},
//            "latency_ns":{"edges":[..],"counts":[..],"count":..}},...],
//    "cache":{"hit":..,"miss":..,"revalidate":..,"evict":..},
//    "counters":[{"name":..,"value":..,"gauge":..},...]}
// Every op appears (including zero-request ones) so consumers can
// select by name without existence checks; only non-zero flat counters
// are listed.
std::string render_metrics_json(const MetricsDocument& doc);

// Prometheus text exposition (one family per serve series plus the flat
// registry as bns_<counter_name> lines). Histogram families follow the
// cumulative-bucket convention with an le="+Inf" terminal bucket.
std::string render_metrics_prometheus(const MetricsDocument& doc);

} // namespace bns::obs
