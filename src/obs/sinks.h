// The three stock sinks:
//
//   NullSink    — drops everything; lets callers keep a sink wired in
//                 while paying only a virtual call (and nothing at all
//                 when the tracer level is below Spans).
//   SummarySink — aggregates per-stage durations in memory and renders
//                 a human-readable table; also queryable, which is how
//                 bench_update_time embeds per-stage breakdowns in its
//                 JSON artifact.
//   JsonLinesSink — one JSON object per line (spans and counters), each
//                 line carrying "schema_version": kTraceSchemaVersion.
//                 CI parses this with jq; tests parse it back in-proc.
//
// All sinks are internally synchronized: spans arrive concurrently from
// ThreadPool workers at TraceLevel::Spans.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace bns::obs {

// Version of the JSON-lines trace schema emitted by JsonLinesSink.
// Bump on any key rename/removal; additions are backward compatible.
inline constexpr int kTraceSchemaVersion = 1;

class NullSink final : public Sink {
 public:
  void on_span(const SpanRecord&) override {}
};

class SummarySink final : public Sink {
 public:
  struct StageStats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };

  void on_span(const SpanRecord& rec) override;
  void on_counters(const MetricsSnapshot& snap) override;
  void on_histogram(const HistogramSnapshot& snap) override;

  // Aggregated per-stage timings so far (copied under the lock).
  std::map<std::string, StageStats> stages() const;

  // Human-readable summary: one row per stage, then non-zero counters,
  // then any flushed histograms.
  void render(std::ostream& os) const;

  // Drops all aggregated spans, counters, and histograms, so the sink
  // can be reused across back-to-back runs in one process.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, StageStats> stages_;
  MetricsSnapshot counters_{};
  bool have_counters_ = false;
  std::vector<HistogramSnapshot> hists_;
};

class JsonLinesSink final : public Sink {
 public:
  // The stream must outlive the sink and is written under a lock.
  explicit JsonLinesSink(std::ostream& os) : os_(&os) {}

  void on_span(const SpanRecord& rec) override;
  // Emits one {"type":"counter",...} line per non-zero counter.
  void on_counters(const MetricsSnapshot& snap) override;
  // Emits one {"type":"histogram",...} line with edges/counts arrays.
  void on_histogram(const HistogramSnapshot& snap) override;

 private:
  std::mutex mu_;
  std::ostream* os_;
};

} // namespace bns::obs
