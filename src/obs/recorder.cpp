#include "obs/recorder.h"

#include <algorithm>
#include <cstring>

#include "obs/json.h"
#include "obs/trace.h"

namespace bns::obs {

FlightRecorder::FlightRecorder(int per_worker_capacity)
    : capacity_(per_worker_capacity < 1 ? 1 : per_worker_capacity),
      rings_(kServeMetricShards) {
  for (Ring& r : rings_) {
    r.slots.resize(static_cast<std::size_t>(capacity_));
  }
}

void FlightRecorder::record(ServeOp op, ErrorClass err,
                            std::uint64_t trace_id, std::string_view model,
                            std::uint64_t start_ns, std::uint64_t dur_ns) {
  Ring& ring = rings_[static_cast<std::size_t>(this_thread_shard())];
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring.mu);
  RequestRecord& slot =
      ring.slots[static_cast<std::size_t>(ring.head % static_cast<std::uint64_t>(capacity_))];
  ++ring.head;
  slot.seq = seq;
  slot.trace_id = trace_id;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.op = op;
  slot.error = err;
  // Keep the tail of an over-long model path: "/very/long/.../c1908.bnsc"
  // truncates to ".../c1908.bnsc", the part a human greps for.
  const std::size_t max = kRecorderModelBytes - 1;
  if (model.size() > max) model = model.substr(model.size() - max);
  std::memcpy(slot.model, model.data(), model.size());
  slot.model[model.size()] = '\0';
}

std::vector<RequestRecord> FlightRecorder::snapshot() const {
  std::vector<RequestRecord> out;
  out.reserve(rings_.size() * static_cast<std::size_t>(capacity_));
  for (const Ring& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring.mu);
    for (const RequestRecord& rec : ring.slots) {
      if (rec.seq != 0) out.push_back(rec);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::dump_jsonl(std::ostream& os) const {
  for (const RequestRecord& rec : snapshot()) {
    char trace_hex[17];
    format_trace_id(rec.trace_id, trace_hex);
    std::string line = "{\"schema_version\":" +
                       std::to_string(kRecorderSchemaVersion) +
                       ",\"type\":\"request\"";
    line += ",\"seq\":" + std::to_string(rec.seq);
    line += ",\"op\":\"";
    line += serve_op_name(rec.op);
    line += "\",\"model\":";
    json_append_string(line, rec.model);
    line += ",\"status\":\"";
    line += rec.error == ErrorClass::None ? "ok" : error_class_name(rec.error);
    line += "\",\"trace_id\":\"";
    line += trace_hex;
    line += "\",\"start_ns\":" + std::to_string(rec.start_ns);
    line += ",\"dur_ns\":" + std::to_string(rec.dur_ns);
    line += "}";
    os << line << '\n';
  }
  os.flush();
}

} // namespace bns::obs
