// Tracer + RAII spans: where the pipeline's wall time goes.
//
// A Span marks one stage (parse, lidag, triangulate, schedule, load,
// propagate, ...) with steady-clock timing and parent/child nesting via
// a thread-local depth counter. Completed spans are fanned out to the
// tracer's sinks (sinks.h) as plain SpanRecords.
//
// Overhead contract, by level:
//   Off      — Span construction is a null-pointer test; counters are
//              dropped. Nothing else happens.
//   Counters — spans stay disabled; Tracer::count()/gauge_max() are one
//              relaxed atomic op each. No allocation, no locking — safe
//              on the zero-allocation update hot path.
//   Spans    — counters plus span records delivered to sinks. Sinks may
//              allocate and lock internally; this level is meant for
//              profiling runs, not steady-state serving.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace bns::obs {

enum class TraceLevel : int { Off = 0, Counters = 1, Spans = 2 };

// Request-scoped trace identity, carried across layers on the current
// thread. A serve-layer request installs one (ScopedTraceContext) and
// every Span opened underneath inherits the trace id and nests its
// parent/child span ids under it — which is what lets a client-supplied
// "trace_id" show up on the daemon's session.estimate spans, and what a
// multi-daemon sweep coordinator forwards over the wire.
struct TraceContext {
  std::uint64_t trace_id = 0;   // 0 = no trace active
  std::uint64_t parent_span = 0; // innermost open span's id (0 = root)

  bool active() const { return trace_id != 0; }
};

// The calling thread's current context (inactive by default).
TraceContext current_trace_context();

// Fresh process-unique ids; allocation-free (thread-local counter mixed
// through splitmix64), never 0.
std::uint64_t generate_trace_id();
std::uint64_t next_span_id();

// Writes `id` as exactly 16 lowercase hex digits plus a NUL into
// buf[17]; the wire format for trace/span ids. Allocation-free.
void format_trace_id(std::uint64_t id, char buf[17]);

// Parses the format_trace_id() wire form (1..16 hex digits, any case).
// Returns 0 on malformed input — 0 is not a valid id.
std::uint64_t parse_trace_id(std::string_view hex);

// Installs a trace context for the current scope and restores the
// previous one on destruction. Allocation-free; works at any trace
// level (at Counters the context is carried but no spans record it).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::uint64_t trace_id,
                              std::uint64_t parent_span = 0);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

struct SpanRecord {
  const char* name = "";     // static string; never owned
  int depth = 0;             // 0 = top-level on its thread
  std::uint64_t thread = 0;  // hashed std::thread::id
  std::uint64_t start_ns = 0; // since the tracer's epoch
  std::uint64_t dur_ns = 0;
  // Trace identity, all 0 when no TraceContext was active: the request
  // trace id, this span's own id, and the id of the enclosing span.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
};

// Sink interface. Implementations must be internally thread-safe at
// TraceLevel::Spans: spans arrive concurrently from pool workers.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_span(const SpanRecord& rec) = 0;
  // Counter dump, delivered by Tracer::flush().
  virtual void on_counters(const MetricsSnapshot& snap) { (void)snap; }
  // One call per non-empty histogram, delivered by Tracer::flush()
  // after on_counters().
  virtual void on_histogram(const HistogramSnapshot& snap) { (void)snap; }
};

class Tracer {
 public:
  explicit Tracer(TraceLevel level = TraceLevel::Spans)
      : level_(level), epoch_(std::chrono::steady_clock::now()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  TraceLevel level() const { return level_; }
  void set_level(TraceLevel level) { level_ = level; }
  bool counters_on() const { return level_ >= TraceLevel::Counters; }
  bool spans_on() const { return level_ >= TraceLevel::Spans; }

  // Sinks are non-owning and must outlive the tracer's last span/flush.
  void add_sink(Sink* sink) { sinks_.push_back(sink); }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Allocation-free counter recording (dropped below Counters level).
  void count(Counter c, std::uint64_t n = 1) {
    if (counters_on()) metrics_.add(c, n);
  }
  void gauge_max(Counter c, std::uint64_t v) {
    if (counters_on()) metrics_.set_max(c, v);
  }
  // Allocation-free histogram sample (dropped below Counters level).
  void hist(Hist h, double v) {
    if (counters_on()) metrics_.add_hist(h, v);
  }

  // Delivers the current counter values and non-empty histograms to
  // every sink.
  void flush();

  // Zeroes every counter/gauge/histogram and restarts the span-time
  // epoch, so multi-run processes (benches, report compare mode) start
  // each run from a clean slate. Sinks keep their own span buffers;
  // reset those separately (e.g. SummarySink::reset()).
  void reset() {
    metrics_.reset();
    epoch_ = std::chrono::steady_clock::now();
  }

  // Nanoseconds since this tracer's construction.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  friend class Span;
  void emit(const SpanRecord& rec);

  TraceLevel level_;
  std::chrono::steady_clock::time_point epoch_;
  MetricsRegistry metrics_;
  std::vector<Sink*> sinks_;
};

// RAII span. `name` must be a string literal (records keep the pointer).
// A null tracer or a sub-Spans level makes construction and destruction
// no-ops, so instrumented code needs no level checks of its own.
class Span {
 public:
  Span(Tracer* tracer, const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_; // null when disabled
  const char* name_;
  int depth_ = 0;
  std::uint64_t start_ns_ = 0;
  TraceContext ctx_;            // inherited context (restored on exit)
  std::uint64_t span_id_ = 0;   // this span's id when ctx_ is active
};

// Process-wide tracer hook for layers without an options plumbing
// (netlist parsers, the thread pool). Null by default; reads are one
// relaxed atomic load. The registered tracer must outlive its use.
Tracer* global_tracer();
void set_global_tracer(Tracer* tracer);

// Counter add through the global tracer; no-op when none is set.
void count_global(Counter c, std::uint64_t n = 1);

} // namespace bns::obs
