#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <sstream>

#include "obs/json.h"
#include "obs/table.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

// Provenance baked in by the build (src/obs/CMakeLists.txt); fall back
// to "unknown" so non-CMake builds of this file still compile.
#ifndef BNS_GIT_DESCRIBE
#define BNS_GIT_DESCRIBE "unknown"
#endif
#ifndef BNS_BUILD_TYPE
#define BNS_BUILD_TYPE "unknown"
#endif

namespace bns::obs {

namespace {

std::string utc_timestamp_iso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string host_name() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {0};
  if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

// --- JSON writing helpers (pretty, stable key order) -----------------------

// Streaming writer for a pretty-printed document with a fixed key
// order: every value is introduced either by key() (inside an object)
// or array_sep() (inside an array), which keeps the comma/newline
// bookkeeping in one place.
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(out) {}

  void open_object() {
    out_ += "{\n";
    ++indent_;
    first_ = true;
  }
  void close_object() {
    --indent_;
    out_ += '\n';
    pad_indent();
    out_ += '}';
    first_ = false;
  }

  void key(std::string_view k) {
    if (!first_) out_ += ",\n";
    first_ = true; // the next value follows inline, not comma-prefixed
    pad_indent();
    json_append_string(out_, k);
    out_ += ": ";
  }

  void value_string(std::string_view s) {
    json_append_string(out_, s);
    first_ = false;
  }
  void value_number(double d) {
    out_ += json_number(d);
    first_ = false;
  }
  void value_uint(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    first_ = false;
  }
  void value_int(int v) { value_number(static_cast<double>(v)); }
  void value_bool(bool b) {
    out_ += b ? "true" : "false";
    first_ = false;
  }

  void open_array() {
    out_ += '[';
    first_ = true;
  }
  void array_sep() {
    if (!first_) out_ += ", ";
    first_ = true;
  }
  void close_array() {
    out_ += ']';
    first_ = false;
  }

 private:
  void pad_indent() {
    out_.append(static_cast<std::size_t>(indent_) * 2, ' ');
  }

  std::string& out_;
  int indent_ = 0;
  bool first_ = true;
};

void write_histogram(JsonWriter& w, const ReportHistogram& h) {
  w.open_object();
  w.key("name");
  w.value_string(h.name);
  w.key("edges");
  w.open_array();
  for (double e : h.edges) {
    w.array_sep();
    w.value_number(e);
  }
  w.close_array();
  w.key("counts");
  w.open_array();
  for (std::uint64_t c : h.counts) {
    w.array_sep();
    w.value_uint(c);
  }
  w.close_array();
  w.key("total");
  w.value_uint(h.total);
  w.close_object();
}

std::optional<ReportHistogram> histogram_from(const JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  ReportHistogram h;
  h.name = v.string_or("name", "");
  const JsonValue* edges = v.find("edges");
  const JsonValue* counts = v.find("counts");
  if (edges == nullptr || !edges->is_array() || counts == nullptr ||
      !counts->is_array()) {
    return std::nullopt;
  }
  for (const JsonValue& e : edges->as_array()) {
    if (!e.is_number()) return std::nullopt;
    h.edges.push_back(e.as_number());
  }
  for (const JsonValue& c : counts->as_array()) {
    if (!c.is_number()) return std::nullopt;
    h.counts.push_back(static_cast<std::uint64_t>(c.as_number()));
  }
  if (h.counts.size() != h.edges.size() + 1) return std::nullopt;
  h.total = static_cast<std::uint64_t>(v.number_or("total", 0.0));
  return h;
}

std::string format_double(double d, const char* fmt = "%.6g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, d);
  return buf;
}

std::string format_uint(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

} // namespace

ReportProvenance default_provenance() {
  ReportProvenance p;
  p.git_describe = BNS_GIT_DESCRIBE;
  p.build_type = BNS_BUILD_TYPE;
  p.timestamp_iso8601 = utc_timestamp_iso8601();
  p.hostname = host_name();
  return p;
}

std::string tool_version_line(std::string_view tool) {
  std::string build = BNS_BUILD_TYPE;
  if (build.empty()) build = "unknown";
  return std::string(tool) + " " + BNS_GIT_DESCRIBE + " (" + build + ")";
}

ReportHistogram ReportHistogram::from_snapshot(const HistogramSnapshot& snap) {
  ReportHistogram h;
  h.name = hist_name(snap.id);
  h.edges.assign(snap.edges.begin(), snap.edges.end());
  const std::size_t buckets = snap.edges.size() + 1;
  h.counts.assign(snap.counts.begin(),
                  snap.counts.begin() + static_cast<std::ptrdiff_t>(buckets));
  h.total = snap.total;
  return h;
}

void RunReport::set_metrics(const MetricsRegistry& reg) {
  counters.clear();
  histograms.clear();
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::uint64_t v = reg.value(c);
    if (v == 0) continue;
    counters.push_back({counter_name(c), v, counter_is_gauge(c)});
  }
  for (int i = 0; i < kNumHists; ++i) {
    const HistogramSnapshot snap = reg.hist(static_cast<Hist>(i)).snapshot();
    if (snap.total == 0) continue;
    histograms.push_back(ReportHistogram::from_snapshot(snap));
  }
}

std::uint64_t RunReport::counter_or(std::string_view name,
                                    std::uint64_t dflt) const {
  for (const ReportCounter& c : counters) {
    if (c.name == name) return c.value;
  }
  return dflt;
}

std::string RunReport::to_json() const {
  std::string out;
  JsonWriter w(out);
  w.open_object();
  w.key("schema_version");
  w.value_int(schema_version);

  w.key("provenance");
  w.open_object();
  w.key("circuit");
  w.value_string(provenance.circuit);
  w.key("git_describe");
  w.value_string(provenance.git_describe);
  w.key("build_type");
  w.value_string(provenance.build_type);
  w.key("timestamp");
  w.value_string(provenance.timestamp_iso8601);
  w.key("hostname");
  w.value_string(provenance.hostname);
  w.key("threads");
  w.value_int(provenance.threads);
  w.close_object();

  w.key("compile");
  w.open_object();
  w.key("compile_seconds");
  w.value_number(compile.compile_seconds);
  w.key("schedule_build_seconds");
  w.value_number(compile.schedule_build_seconds);
  w.key("num_segments");
  w.value_int(compile.num_segments);
  w.key("total_state_space");
  w.value_number(compile.total_state_space);
  w.key("max_clique_vars");
  w.value_uint(compile.max_clique_vars);
  w.key("total_bn_variables");
  w.value_int(compile.total_bn_variables);
  w.key("fill_edges");
  w.value_uint(compile.fill_edges);
  w.close_object();

  w.key("estimate");
  w.open_object();
  w.key("propagate_seconds");
  w.value_number(estimate.propagate_seconds);
  w.key("reload_seconds");
  w.value_number(estimate.reload_seconds);
  w.key("messages_passed");
  w.value_uint(estimate.messages_passed);
  w.key("threads_used");
  w.value_int(estimate.threads_used);
  w.key("average_activity");
  w.value_number(estimate.average_activity);
  w.close_object();

  w.key("counters");
  w.open_array();
  for (const ReportCounter& c : counters) {
    w.array_sep();
    w.open_object();
    w.key("name");
    w.value_string(c.name);
    w.key("value");
    w.value_uint(c.value);
    w.key("gauge");
    w.value_bool(c.gauge);
    w.close_object();
  }
  w.close_array();

  w.key("histograms");
  w.open_array();
  for (const ReportHistogram& h : histograms) {
    w.array_sep();
    write_histogram(w, h);
  }
  w.close_array();

  if (accuracy.present()) {
    w.key("accuracy");
    w.open_object();
    w.key("sim_pairs");
    w.value_uint(accuracy.sim_pairs);
    w.key("seed");
    w.value_uint(accuracy.seed);
    w.key("lines");
    w.value_int(accuracy.lines);
    w.key("mean_abs_error");
    w.value_number(accuracy.mean_abs_error);
    w.key("max_abs_error");
    w.value_number(accuracy.max_abs_error);
    w.key("rms_error");
    w.value_number(accuracy.rms_error);
    w.key("error_hist");
    write_histogram(w, accuracy.error_hist);
    w.key("worst_lines");
    w.open_array();
    for (const ReportWorstLine& wl : accuracy.worst) {
      w.array_sep();
      w.open_object();
      w.key("line");
      w.value_string(wl.line);
      w.key("estimated");
      w.value_number(wl.estimated);
      w.key("simulated");
      w.value_number(wl.simulated);
      w.key("abs_error");
      w.value_number(wl.abs_error);
      w.close_object();
    }
    w.close_array();
    if (!accuracy.per_segment.empty()) {
      w.key("per_segment");
      w.open_array();
      for (const ReportSegmentError& se : accuracy.per_segment) {
        w.array_sep();
        w.open_object();
        w.key("segment");
        w.value_int(se.segment);
        w.key("lines");
        w.value_int(se.lines);
        w.key("mean_abs_error");
        w.value_number(se.mean_abs_error);
        w.key("max_abs_error");
        w.value_number(se.max_abs_error);
        w.close_object();
      }
      w.close_array();
    }
    w.close_object();
  }

  if (cost_model.present()) {
    w.key("cost_model");
    w.open_object();
    w.key("total_units");
    w.value_int(cost_model.total_units);
    w.key("units");
    w.open_array();
    for (const ReportUnitCost& uc : cost_model.units) {
      w.array_sep();
      w.open_object();
      w.key("segment");
      w.value_int(uc.segment);
      w.key("unit");
      w.value_int(uc.unit);
      w.key("predicted_ns");
      w.value_number(uc.predicted_ns);
      w.key("observed_ns");
      w.value_number(uc.observed_ns);
      w.key("table_cells");
      w.value_number(uc.table_cells);
      w.close_object();
    }
    w.close_array();
    w.close_object();
  }

  w.close_object();
  out += '\n';
  return out;
}

std::optional<RunReport> RunReport::from_json(std::string_view text) {
  const std::optional<JsonValue> doc = json_parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;

  RunReport r;
  r.schema_version = static_cast<int>(doc->number_or("schema_version", 0.0));
  if (r.schema_version <= 0 || r.schema_version > kReportSchemaVersion) {
    return std::nullopt;
  }

  if (const JsonValue* p = doc->find("provenance"); p != nullptr) {
    r.provenance.circuit = p->string_or("circuit", "");
    r.provenance.git_describe = p->string_or("git_describe", "");
    r.provenance.build_type = p->string_or("build_type", "");
    r.provenance.timestamp_iso8601 = p->string_or("timestamp", "");
    r.provenance.hostname = p->string_or("hostname", "");
    r.provenance.threads = static_cast<int>(p->number_or("threads", 1.0));
  }

  if (const JsonValue* c = doc->find("compile"); c != nullptr) {
    r.compile.compile_seconds = c->number_or("compile_seconds", 0.0);
    r.compile.schedule_build_seconds =
        c->number_or("schedule_build_seconds", 0.0);
    r.compile.num_segments = static_cast<int>(c->number_or("num_segments", 0.0));
    r.compile.total_state_space = c->number_or("total_state_space", 0.0);
    r.compile.max_clique_vars =
        static_cast<std::uint64_t>(c->number_or("max_clique_vars", 0.0));
    r.compile.total_bn_variables =
        static_cast<int>(c->number_or("total_bn_variables", 0.0));
    r.compile.fill_edges =
        static_cast<std::uint64_t>(c->number_or("fill_edges", 0.0));
  }

  if (const JsonValue* e = doc->find("estimate"); e != nullptr) {
    r.estimate.propagate_seconds = e->number_or("propagate_seconds", 0.0);
    r.estimate.reload_seconds = e->number_or("reload_seconds", 0.0);
    r.estimate.messages_passed =
        static_cast<std::uint64_t>(e->number_or("messages_passed", 0.0));
    r.estimate.threads_used = static_cast<int>(e->number_or("threads_used", 1.0));
    r.estimate.average_activity = e->number_or("average_activity", 0.0);
  }

  if (const JsonValue* cs = doc->find("counters");
      cs != nullptr && cs->is_array()) {
    for (const JsonValue& cv : cs->as_array()) {
      if (!cv.is_object()) return std::nullopt;
      ReportCounter c;
      c.name = cv.string_or("name", "");
      c.value = static_cast<std::uint64_t>(cv.number_or("value", 0.0));
      if (const JsonValue* g = cv.find("gauge"); g != nullptr && g->is_bool()) {
        c.gauge = g->as_bool();
      }
      r.counters.push_back(std::move(c));
    }
  }

  if (const JsonValue* hs = doc->find("histograms");
      hs != nullptr && hs->is_array()) {
    for (const JsonValue& hv : hs->as_array()) {
      std::optional<ReportHistogram> h = histogram_from(hv);
      if (!h) return std::nullopt;
      r.histograms.push_back(std::move(*h));
    }
  }

  if (const JsonValue* a = doc->find("accuracy"); a != nullptr) {
    r.accuracy.sim_pairs =
        static_cast<std::uint64_t>(a->number_or("sim_pairs", 0.0));
    r.accuracy.seed = static_cast<std::uint64_t>(a->number_or("seed", 0.0));
    r.accuracy.lines = static_cast<int>(a->number_or("lines", 0.0));
    r.accuracy.mean_abs_error = a->number_or("mean_abs_error", 0.0);
    r.accuracy.max_abs_error = a->number_or("max_abs_error", 0.0);
    r.accuracy.rms_error = a->number_or("rms_error", 0.0);
    if (const JsonValue* eh = a->find("error_hist"); eh != nullptr) {
      std::optional<ReportHistogram> h = histogram_from(*eh);
      if (!h) return std::nullopt;
      r.accuracy.error_hist = std::move(*h);
    }
    if (const JsonValue* wl = a->find("worst_lines");
        wl != nullptr && wl->is_array()) {
      for (const JsonValue& wv : wl->as_array()) {
        if (!wv.is_object()) return std::nullopt;
        ReportWorstLine line;
        line.line = wv.string_or("line", "");
        line.estimated = wv.number_or("estimated", 0.0);
        line.simulated = wv.number_or("simulated", 0.0);
        line.abs_error = wv.number_or("abs_error", 0.0);
        r.accuracy.worst.push_back(std::move(line));
      }
    }
    if (const JsonValue* ps = a->find("per_segment");
        ps != nullptr && ps->is_array()) {
      for (const JsonValue& sv : ps->as_array()) {
        if (!sv.is_object()) return std::nullopt;
        ReportSegmentError se;
        se.segment = static_cast<int>(sv.number_or("segment", -1.0));
        se.lines = static_cast<int>(sv.number_or("lines", 0.0));
        se.mean_abs_error = sv.number_or("mean_abs_error", 0.0);
        se.max_abs_error = sv.number_or("max_abs_error", 0.0);
        r.accuracy.per_segment.push_back(se);
      }
    }
  }

  if (const JsonValue* cm = doc->find("cost_model"); cm != nullptr) {
    r.cost_model.total_units =
        static_cast<int>(cm->number_or("total_units", 0.0));
    if (const JsonValue* us = cm->find("units");
        us != nullptr && us->is_array()) {
      for (const JsonValue& uv : us->as_array()) {
        if (!uv.is_object()) return std::nullopt;
        ReportUnitCost uc;
        uc.segment = static_cast<int>(uv.number_or("segment", 0.0));
        uc.unit = static_cast<int>(uv.number_or("unit", 0.0));
        uc.predicted_ns = uv.number_or("predicted_ns", 0.0);
        uc.observed_ns = uv.number_or("observed_ns", 0.0);
        uc.table_cells = uv.number_or("table_cells", 0.0);
        r.cost_model.units.push_back(uc);
      }
    }
  }

  return r;
}

std::string RunReport::render_text() const {
  std::ostringstream os;
  os << "run report (schema " << schema_version << ")\n";
  os << "  circuit    " << provenance.circuit << '\n';
  os << "  git        " << provenance.git_describe << '\n';
  os << "  build      " << provenance.build_type << '\n';
  os << "  timestamp  " << provenance.timestamp_iso8601 << '\n';
  os << "  host       " << provenance.hostname << '\n';
  os << "  threads    " << provenance.threads << '\n';
  os << '\n';

  {
    Table t({"phase", "seconds", "detail"});
    t.add_row({"compile", format_double(compile.compile_seconds),
               "segments=" + std::to_string(compile.num_segments) +
                   " state_space=" + format_double(compile.total_state_space) +
                   " max_clique_vars=" + format_uint(compile.max_clique_vars)});
    t.add_row({"schedule_build", format_double(compile.schedule_build_seconds),
               "fill_edges=" + format_uint(compile.fill_edges)});
    t.add_row({"propagate", format_double(estimate.propagate_seconds),
               "messages=" + format_uint(estimate.messages_passed) +
                   " threads=" + std::to_string(estimate.threads_used)});
    t.add_row({"reload", format_double(estimate.reload_seconds), ""});
    t.print(os);
    os << '\n';
  }

  os << "average activity " << format_double(estimate.average_activity)
     << '\n';

  if (!counters.empty()) {
    os << '\n';
    Table t({"counter", "value", "kind"});
    for (const ReportCounter& c : counters) {
      t.add_row({c.name, format_uint(c.value), c.gauge ? "gauge" : "sum"});
    }
    t.print(os);
  }

  auto render_hist = [&os](const ReportHistogram& h) {
    os << "histogram " << h.name << " (total " << format_uint(h.total)
       << ")\n";
    Table t({"bucket", "count"});
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      const std::string label =
          i < h.edges.size()
              ? "< " + format_double(h.edges[i], "%g")
              : ">= " + format_double(h.edges.empty() ? 0.0 : h.edges.back(),
                                      "%g");
      t.add_row({label, format_uint(h.counts[i])});
    }
    t.print(os);
  };

  for (const ReportHistogram& h : histograms) {
    os << '\n';
    render_hist(h);
  }

  if (accuracy.present()) {
    os << "\naccuracy vs Monte Carlo (" << format_uint(accuracy.sim_pairs)
       << " vector pairs, seed " << format_uint(accuracy.seed) << ", "
       << accuracy.lines << " lines)\n";
    Table t({"metric", "value"});
    t.add_row({"mean_abs_error", format_double(accuracy.mean_abs_error)});
    t.add_row({"max_abs_error", format_double(accuracy.max_abs_error)});
    t.add_row({"rms_error", format_double(accuracy.rms_error)});
    t.print(os);
    if (accuracy.error_hist.total > 0) {
      os << '\n';
      render_hist(accuracy.error_hist);
    }
    if (!accuracy.worst.empty()) {
      os << "\nworst lines\n";
      Table wt({"line", "estimated", "simulated", "abs_error"});
      for (const ReportWorstLine& wl : accuracy.worst) {
        wt.add_row({wl.line, format_double(wl.estimated),
                    format_double(wl.simulated),
                    format_double(wl.abs_error)});
      }
      wt.print(os);
    }
    if (!accuracy.per_segment.empty()) {
      os << "\nerror by segment\n";
      Table st({"segment", "lines", "mean_abs_error", "max_abs_error"});
      for (const ReportSegmentError& se : accuracy.per_segment) {
        st.add_row({se.segment < 0 ? "(unowned)" : std::to_string(se.segment),
                    std::to_string(se.lines),
                    format_double(se.mean_abs_error),
                    format_double(se.max_abs_error)});
      }
      st.print(os);
    }
  }

  if (cost_model.present()) {
    os << "\nscheduler cost model (" << cost_model.total_units << " units";
    if (static_cast<int>(cost_model.units.size()) < cost_model.total_units) {
      os << ", showing top " << cost_model.units.size() << " by observed";
    }
    os << ")\n";
    Table ct({"segment", "unit", "predicted_ns", "observed_ns",
              "table_cells"});
    for (const ReportUnitCost& uc : cost_model.units) {
      ct.add_row({std::to_string(uc.segment), std::to_string(uc.unit),
                  format_double(uc.predicted_ns),
                  format_double(uc.observed_ns),
                  format_double(uc.table_cells)});
    }
    ct.print(os);
  }

  return os.str();
}

} // namespace bns::obs
