// Minimal recursive-descent JSON reader and escape-aware writer helpers
// for the run-report pipeline (obs/report.*). This is deliberately a
// small, std-only value model — enough for the schema-versioned
// documents this repo emits (reports, bench artifacts), not a general
// serialization framework.
//
// Limits: numbers are parsed as double; object member order is not
// preserved (std::map); duplicate keys keep the last value; input depth
// is bounded to keep malicious inputs from overflowing the stack.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bns::obs {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  explicit JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::Number), num_(d) {}
  explicit JsonValue(std::string s)
      : type_(Type::String), str_(std::move(s)) {}
  explicit JsonValue(JsonArray a);
  explicit JsonValue(JsonObject o);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  // Typed accessors; preconditions on the matching type.
  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Convenience: member as number/string with a default.
  double number_or(std::string_view key, double dflt) const;
  std::string string_or(std::string_view key, std::string dflt) const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Indirect so JsonValue stays movable while JsonArray/JsonObject
  // contain JsonValue by value.
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

// Parses one JSON document (surrounding whitespace allowed; trailing
// garbage rejected). Returns nullopt on any syntax error.
std::optional<JsonValue> json_parse(std::string_view text);

// Appends `s` as a quoted, escaped JSON string literal to `out`.
void json_append_string(std::string& out, std::string_view s);

// Formats a double the way our emitters do: shortest round-trippable
// form via %.17g, with non-finite values mapped to 0 (JSON has no
// inf/nan).
std::string json_number(double d);

} // namespace bns::obs
