// FlightRecorder: a fixed-size per-worker ring buffer of the last N
// request summaries, for post-hoc diagnosis of a stuck or slow daemon.
//
// The serve layer records one RequestRecord per answered request — op,
// model, duration, status, trace id — into the calling thread's ring.
// Recording is a slot write under an uncontended per-ring mutex with
// all storage preallocated at construction: zero steady-state
// allocation, so the recorder can stay on at Counters-level telemetry
// forever. The rings only leave the process on demand: dump_jsonl() —
// wired to SIGUSR1 and to abnormal drain in bns_serve — merges every
// ring in request order and writes one JSON object per line.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace bns::obs {

// Version of the recorder dump's JSON-lines schema. Bump on any key
// rename/removal; additions are backward compatible.
inline constexpr int kRecorderSchemaVersion = 1;

// Fixed-size model-name storage: long paths are truncated (the tail
// usually carries the interesting part, so keep the last bytes).
inline constexpr std::size_t kRecorderModelBytes = 48;

struct RequestRecord {
  std::uint64_t seq = 0;      // global request order; 0 = empty slot
  std::uint64_t trace_id = 0;
  std::uint64_t start_ns = 0; // monotonic, since the recorder's epoch
  std::uint64_t dur_ns = 0;
  ServeOp op = ServeOp::Invalid;
  ErrorClass error = ErrorClass::None; // None = success
  char model[kRecorderModelBytes] = {}; // NUL-terminated, maybe truncated
};

class FlightRecorder {
 public:
  // `per_worker_capacity` slots per worker ring (kServeMetricShards
  // rings); all memory is allocated here, never on record().
  explicit FlightRecorder(int per_worker_capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one summary to the calling thread's ring, overwriting the
  // oldest entry once full. Allocation-free.
  void record(ServeOp op, ErrorClass err, std::uint64_t trace_id,
              std::string_view model, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  // Every live record across all rings, oldest first. Allocates (dump
  // path only, never steady state).
  std::vector<RequestRecord> snapshot() const;

  // One JSON object per record:
  //   {"schema_version":1,"type":"request","seq":..,"op":"sweep",
  //    "model":"c1908.bnsc","status":"ok","trace_id":"00..ab",
  //    "start_ns":..,"dur_ns":..}
  // status is "ok" or the error class name.
  void dump_jsonl(std::ostream& os) const;

  int per_worker_capacity() const { return capacity_; }

  // Total records ever recorded (not just the retained window).
  std::uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed) - 1;
  }

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<RequestRecord> slots;
    std::uint64_t head = 0; // next slot index to write, monotonically
  };

  int capacity_;
  std::atomic<std::uint64_t> next_seq_{1};
  std::vector<Ring> rings_; // kServeMetricShards entries
};

} // namespace bns::obs
