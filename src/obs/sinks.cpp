#include "obs/sinks.h"

#include "obs/json.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace bns::obs {

void SummarySink::on_span(const SpanRecord& rec) {
  std::lock_guard<std::mutex> lk(mu_);
  StageStats& s = stages_[rec.name];
  ++s.count;
  s.total_ns += rec.dur_ns;
  s.max_ns = std::max(s.max_ns, rec.dur_ns);
}

void SummarySink::on_counters(const MetricsSnapshot& snap) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_ = snap;
  have_counters_ = true;
}

void SummarySink::on_histogram(const HistogramSnapshot& snap) {
  std::lock_guard<std::mutex> lk(mu_);
  // Repeated flushes replace the previous snapshot of the same id.
  for (HistogramSnapshot& h : hists_) {
    if (h.id == snap.id) {
      h = snap;
      return;
    }
  }
  hists_.push_back(snap);
}

void SummarySink::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  stages_.clear();
  counters_ = MetricsSnapshot{};
  have_counters_ = false;
  hists_.clear();
}

std::map<std::string, SummarySink::StageStats> SummarySink::stages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stages_;
}

void SummarySink::render(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "stage                       count     total(s)       max(s)\n";
  for (const auto& [name, s] : stages_) {
    char line[128];
    std::snprintf(line, sizeof line, "%-24s %8llu %12.6f %12.6f\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.total_ns) * 1e-9,
                  static_cast<double>(s.max_ns) * 1e-9);
    os << line;
  }
  if (have_counters_) {
    os << "counter                        value\n";
    for (int i = 0; i < kNumCounters; ++i) {
      const auto c = static_cast<Counter>(i);
      const std::uint64_t v = counters_[static_cast<std::size_t>(i)];
      if (v == 0) continue;
      char line[128];
      std::snprintf(line, sizeof line, "%-24s %11llu\n", counter_name(c),
                    static_cast<unsigned long long>(v));
      os << line;
    }
  }
  for (const HistogramSnapshot& h : hists_) {
    char line[128];
    std::snprintf(line, sizeof line, "histogram %-24s total %llu\n",
                  hist_name(h.id), static_cast<unsigned long long>(h.total));
    os << line;
    const int buckets = static_cast<int>(h.edges.size()) + 1;
    for (int i = 0; i < buckets; ++i) {
      const std::uint64_t v = h.counts[static_cast<std::size_t>(i)];
      if (v == 0) continue;
      if (i < static_cast<int>(h.edges.size())) {
        std::snprintf(line, sizeof line, "  < %-12g %11llu\n",
                      h.edges[static_cast<std::size_t>(i)],
                      static_cast<unsigned long long>(v));
      } else {
        std::snprintf(line, sizeof line, "  >= %-11g %11llu\n",
                      h.edges.empty() ? 0.0 : h.edges.back(),
                      static_cast<unsigned long long>(v));
      }
      os << line;
    }
  }
}

void JsonLinesSink::on_span(const SpanRecord& rec) {
  // Span names come from callers, not a fixed table — escape them so an
  // exotic name cannot corrupt the JSON-lines stream.
  std::string name;
  json_append_string(name, rec.name);
  char line[384];
  int n = std::snprintf(line, sizeof line,
                        "{\"schema_version\": %d, \"type\": \"span\", "
                        "\"name\": %s, \"depth\": %d, \"thread\": %llu, "
                        "\"start_ns\": %llu, \"dur_ns\": %llu",
                        kTraceSchemaVersion, name.c_str(), rec.depth,
                        static_cast<unsigned long long>(rec.thread),
                        static_cast<unsigned long long>(rec.start_ns),
                        static_cast<unsigned long long>(rec.dur_ns));
  if (rec.trace_id != 0 && n > 0 && n < static_cast<int>(sizeof line)) {
    char trace_hex[17];
    char span_hex[17];
    char parent_hex[17];
    format_trace_id(rec.trace_id, trace_hex);
    format_trace_id(rec.span_id, span_hex);
    format_trace_id(rec.parent_span, parent_hex);
    n += std::snprintf(line + n, sizeof line - static_cast<std::size_t>(n),
                       ", \"trace_id\": \"%s\", \"span_id\": \"%s\", "
                       "\"parent_span\": \"%s\"",
                       trace_hex, span_hex, parent_hex);
  }
  if (n > 0 && n < static_cast<int>(sizeof line) - 1) {
    line[n] = '}';
    line[n + 1] = '\0';
  }
  std::lock_guard<std::mutex> lk(mu_);
  *os_ << line << '\n';
}

void JsonLinesSink::on_counters(const MetricsSnapshot& snap) {
  std::lock_guard<std::mutex> lk(mu_);
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::uint64_t v = snap[static_cast<std::size_t>(i)];
    if (v == 0) continue;
    char line[192];
    std::snprintf(line, sizeof line,
                  "{\"schema_version\": %d, \"type\": \"counter\", \"name\": "
                  "\"%s\", \"value\": %llu, \"gauge\": %s}",
                  kTraceSchemaVersion, counter_name(c),
                  static_cast<unsigned long long>(v),
                  counter_is_gauge(c) ? "true" : "false");
    *os_ << line << '\n';
  }
  os_->flush();
}

void JsonLinesSink::on_histogram(const HistogramSnapshot& snap) {
  std::lock_guard<std::mutex> lk(mu_);
  *os_ << "{\"schema_version\": " << kTraceSchemaVersion
       << ", \"type\": \"histogram\", \"name\": \"" << hist_name(snap.id)
       << "\", \"edges\": [";
  for (std::size_t i = 0; i < snap.edges.size(); ++i) {
    char num[32];
    std::snprintf(num, sizeof num, "%s%g", i == 0 ? "" : ", ",
                  snap.edges[i]);
    *os_ << num;
  }
  *os_ << "], \"counts\": [";
  const std::size_t buckets = snap.edges.size() + 1;
  for (std::size_t i = 0; i < buckets; ++i) {
    if (i != 0) *os_ << ", ";
    *os_ << snap.counts[i];
  }
  *os_ << "], \"total\": " << snap.total << "}\n";
  os_->flush();
}

} // namespace bns::obs
