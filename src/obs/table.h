// Plain-text and CSV table rendering shared by the run-report text
// renderer (obs/report.*) and the benchmark harnesses, so bench
// binaries and `bns_report` print rows through one formatting path.
//
// Lives in obs (the bottom-most layer) but stays in namespace bns for
// source compatibility with its previous home in util/.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace bns {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row. Precondition: cells.size() == number of headers.
  void add_row(std::vector<std::string> cells);

  // Renders with aligned columns and a header separator.
  void print(std::ostream& os) const;

  // Renders as RFC-4180-ish CSV (cells containing comma/quote are quoted).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace bns
