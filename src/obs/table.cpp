#include "obs/table.h"

#include <algorithm>
#include <cassert>

namespace bns {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  // obs sits below util, so contract checks here use plain assert
  // instead of BNS_EXPECTS.
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

} // namespace bns
