#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bns::obs {

JsonValue::JsonValue(JsonArray a)
    : type_(Type::Array), arr_(std::make_shared<JsonArray>(std::move(a))) {}

JsonValue::JsonValue(JsonObject o)
    : type_(Type::Object), obj_(std::make_shared<JsonObject>(std::move(o))) {}

const JsonArray& JsonValue::as_array() const {
  static const JsonArray kEmpty;
  return arr_ ? *arr_ : kEmpty;
}

const JsonObject& JsonValue::as_object() const {
  static const JsonObject kEmpty;
  return obj_ ? *obj_ : kEmpty;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto it = obj_->find(std::string(key));
  return it == obj_->end() ? nullptr : &it->second;
}

double JsonValue::number_or(std::string_view key, double dflt) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : dflt;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string dflt) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::move(dflt);
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view in;
  std::size_t i = 0;
  bool failed = false;

  void skip_ws() {
    while (i < in.size() &&
           std::isspace(static_cast<unsigned char>(in[i]))) {
      ++i;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (i < in.size() && in[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (in.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }

  JsonValue fail() {
    failed = true;
    return JsonValue();
  }

  JsonValue parse_string_value() {
    std::string out;
    ++i; // opening quote
    while (i < in.size() && in[i] != '"') {
      char c = in[i++];
      if (c == '\\') {
        if (i >= in.size()) return fail();
        const char esc = in[i++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (i + 4 > in.size()) return fail();
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = in[i++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail();
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by any of our emitters).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail();
        }
      } else {
        out.push_back(c);
      }
    }
    if (i >= in.size()) return fail();
    ++i; // closing quote
    return JsonValue(std::move(out));
  }

  JsonValue parse_number() {
    const std::size_t start = i;
    if (i < in.size() && (in[i] == '-' || in[i] == '+')) ++i;
    while (i < in.size() &&
           (std::isdigit(static_cast<unsigned char>(in[i])) || in[i] == '.' ||
            in[i] == 'e' || in[i] == 'E' || in[i] == '-' || in[i] == '+')) {
      ++i;
    }
    const std::string tok(in.substr(start, i - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') return fail();
    return JsonValue(d);
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) return fail();
    skip_ws();
    if (i >= in.size()) return fail();
    const char c = in[i];
    if (c == '"') return parse_string_value();
    if (c == '{') {
      ++i;
      JsonObject obj;
      if (consume('}')) return JsonValue(std::move(obj));
      do {
        skip_ws();
        if (i >= in.size() || in[i] != '"') return fail();
        JsonValue key = parse_string_value();
        if (failed || !consume(':')) return fail();
        JsonValue val = parse_value(depth + 1);
        if (failed) return JsonValue();
        obj[key.as_string()] = std::move(val);
      } while (consume(','));
      if (!consume('}')) return fail();
      return JsonValue(std::move(obj));
    }
    if (c == '[') {
      ++i;
      JsonArray arr;
      if (consume(']')) return JsonValue(std::move(arr));
      do {
        JsonValue val = parse_value(depth + 1);
        if (failed) return JsonValue();
        arr.push_back(std::move(val));
      } while (consume(','));
      if (!consume(']')) return fail();
      return JsonValue(std::move(arr));
    }
    if (literal("true")) return JsonValue(true);
    if (literal("false")) return JsonValue(false);
    if (literal("null")) return JsonValue();
    return parse_number();
  }
};

} // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  Parser p{text};
  JsonValue v = p.parse_value(0);
  if (p.failed) return std::nullopt;
  p.skip_ws();
  if (p.i != text.size()) return std::nullopt;
  return v;
}

void json_append_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double d) {
  if (!std::isfinite(d)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

} // namespace bns::obs
