#include "obs/trace.h"

#include <atomic>
#include <functional>
#include <thread>

namespace bns::obs {
namespace {

// Per-thread span nesting depth. Depth (not an explicit parent id) is
// what sinks need to reconstruct the tree: a record at depth d is a
// child of the most recent still-open record at depth d-1 on the same
// thread.
thread_local int tls_span_depth = 0;

// The thread's current trace context; request handlers install one via
// ScopedTraceContext and spans thread their parent/child ids through it.
thread_local TraceContext tls_trace_context;

std::atomic<Tracer*> g_tracer{nullptr};

std::uint64_t thread_hash() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

// splitmix64: cheap, allocation-free, good bit dispersion for ids.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Per-thread id sequence, seeded once per thread from the clock and the
// thread hash so concurrent workers never collide.
std::uint64_t next_id() {
  thread_local std::uint64_t state =
      splitmix64(static_cast<std::uint64_t>(
                     std::chrono::steady_clock::now().time_since_epoch()
                         .count()) ^
                 thread_hash());
  state = splitmix64(state);
  return state != 0 ? state : 1;
}

} // namespace

TraceContext current_trace_context() { return tls_trace_context; }

std::uint64_t generate_trace_id() { return next_id(); }

std::uint64_t next_span_id() { return next_id(); }

void format_trace_id(std::uint64_t id, char buf[17]) {
  static const char* kHex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[id & 0xf];
    id >>= 4;
  }
  buf[16] = '\0';
}

std::uint64_t parse_trace_id(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  std::uint64_t id = 0;
  for (const char c : hex) {
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return 0;
    id = (id << 4) | static_cast<std::uint64_t>(digit);
  }
  return id;
}

ScopedTraceContext::ScopedTraceContext(std::uint64_t trace_id,
                                       std::uint64_t parent_span)
    : prev_(tls_trace_context) {
  tls_trace_context = TraceContext{trace_id, parent_span};
}

ScopedTraceContext::~ScopedTraceContext() { tls_trace_context = prev_; }

void Tracer::emit(const SpanRecord& rec) {
  for (Sink* s : sinks_) s->on_span(rec);
}

void Tracer::flush() {
  const MetricsSnapshot snap = metrics_.snapshot();
  for (Sink* s : sinks_) s->on_counters(snap);
  for (int i = 0; i < kNumHists; ++i) {
    const HistogramSnapshot h =
        metrics_.hist(static_cast<Hist>(i)).snapshot();
    if (h.total == 0) continue;
    for (Sink* s : sinks_) s->on_histogram(h);
  }
}

Span::Span(Tracer* tracer, const char* name)
    : tracer_(tracer != nullptr && tracer->spans_on() ? tracer : nullptr),
      name_(name) {
  if (tracer_ == nullptr) return;
  depth_ = tls_span_depth++;
  start_ns_ = tracer_->now_ns();
  ctx_ = tls_trace_context;
  if (ctx_.active()) {
    // Children opened while this span is live see it as their parent.
    span_id_ = next_span_id();
    tls_trace_context = TraceContext{ctx_.trace_id, span_id_};
  }
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  --tls_span_depth;
  if (ctx_.active()) tls_trace_context = ctx_;
  SpanRecord rec;
  rec.name = name_;
  rec.depth = depth_;
  rec.thread = thread_hash();
  rec.start_ns = start_ns_;
  rec.dur_ns = tracer_->now_ns() - start_ns_;
  rec.trace_id = ctx_.trace_id;
  rec.span_id = span_id_;
  rec.parent_span = ctx_.parent_span;
  tracer_->emit(rec);
}

Tracer* global_tracer() { return g_tracer.load(std::memory_order_relaxed); }

void set_global_tracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_relaxed);
}

void count_global(Counter c, std::uint64_t n) {
  if (Tracer* t = global_tracer()) t->count(c, n);
}

} // namespace bns::obs
