#include "obs/trace.h"

#include <atomic>
#include <functional>
#include <thread>

namespace bns::obs {
namespace {

// Per-thread span nesting depth. Depth (not an explicit parent id) is
// what sinks need to reconstruct the tree: a record at depth d is a
// child of the most recent still-open record at depth d-1 on the same
// thread.
thread_local int tls_span_depth = 0;

std::atomic<Tracer*> g_tracer{nullptr};

std::uint64_t thread_hash() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

} // namespace

void Tracer::emit(const SpanRecord& rec) {
  for (Sink* s : sinks_) s->on_span(rec);
}

void Tracer::flush() {
  const MetricsSnapshot snap = metrics_.snapshot();
  for (Sink* s : sinks_) s->on_counters(snap);
  for (int i = 0; i < kNumHists; ++i) {
    const HistogramSnapshot h =
        metrics_.hist(static_cast<Hist>(i)).snapshot();
    if (h.total == 0) continue;
    for (Sink* s : sinks_) s->on_histogram(h);
  }
}

Span::Span(Tracer* tracer, const char* name)
    : tracer_(tracer != nullptr && tracer->spans_on() ? tracer : nullptr),
      name_(name) {
  if (tracer_ == nullptr) return;
  depth_ = tls_span_depth++;
  start_ns_ = tracer_->now_ns();
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  --tls_span_depth;
  SpanRecord rec;
  rec.name = name_;
  rec.depth = depth_;
  rec.thread = thread_hash();
  rec.start_ns = start_ns_;
  rec.dur_ns = tracer_->now_ns() - start_ns_;
  tracer_->emit(rec);
}

Tracer* global_tracer() { return g_tracer.load(std::memory_order_relaxed); }

void set_global_tracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_relaxed);
}

void count_global(Counter c, std::uint64_t n) {
  if (Tracer* t = global_tracer()) t->count(c, n);
}

} // namespace bns::obs
