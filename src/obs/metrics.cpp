#include "obs/metrics.h"

namespace bns::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::CliquesBuilt: return "cliques_built";
    case Counter::FillEdges: return "fill_edges";
    case Counter::MaxCliqueStates: return "max_clique_states";
    case Counter::MessagesPassed: return "messages_passed";
    case Counter::CptLoads: return "cpt_loads";
    case Counter::ScheduleBuilds: return "schedule_builds";
    case Counter::ScheduleCacheHits: return "schedule_cache_hits";
    case Counter::SegmentSplits: return "segment_splits";
    case Counter::ThreadPoolTasks: return "thread_pool_tasks";
    case Counter::PreallocBytes: return "prealloc_bytes";
    case Counter::SepZeroCells: return "sep_zero_cells";
    case Counter::SepSubnormalCells: return "sep_subnormal_cells";
    case Counter::SepMinNegExp: return "sep_min_neg_exp";
    case Counter::NormResiduePpb: return "norm_residue_ppb";
    case Counter::SweepScenarios: return "sweep_scenarios";
    case Counter::SweepSegmentsReloaded: return "sweep_segments_reloaded";
    case Counter::SweepSegmentsSkipped: return "sweep_segments_skipped";
    case Counter::IncrementalReloads: return "incremental_reloads";
    case Counter::CliquesRestored: return "cliques_restored";
    case Counter::MessagesSkipped: return "messages_skipped";
    case Counter::ArtifactLoads: return "artifact_loads";
    case Counter::ServeConnections: return "serve_connections";
    case Counter::ServeRequests: return "serve_requests";
    case Counter::ServeErrors: return "serve_errors";
    case Counter::kCount: break;
  }
  return "unknown";
}

bool counter_is_gauge(Counter c) {
  return c == Counter::MaxCliqueStates || c == Counter::SepMinNegExp ||
         c == Counter::NormResiduePpb;
}

namespace {

// Static bucket edges; see hist_edges() contract in metrics.h. Sizes
// must stay < kHistMaxBuckets (edges + 1 overflow bucket).
constexpr double kPropagateNsEdges[] = {1e3, 1e4, 1e5, 1e6, 1e7,
                                        1e8, 1e9, 1e10};
constexpr double kSepMinNegExpEdges[] = {1,   16,  64,  128, 256,
                                         512, 768, 1024, 1075};
constexpr double kLineAbsErrorEdges[] = {1e-6, 1e-5, 1e-4, 1e-3, 3e-3,
                                         1e-2, 3e-2, 1e-1, 0.3};

static_assert(std::size(kPropagateNsEdges) + 1 <= kHistMaxBuckets);
static_assert(std::size(kSepMinNegExpEdges) + 1 <= kHistMaxBuckets);
static_assert(std::size(kLineAbsErrorEdges) + 1 <= kHistMaxBuckets);

} // namespace

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::PropagateNs: return "propagate_ns";
    case Hist::SepMinNegExp: return "sep_min_neg_exp";
    case Hist::LineAbsError: return "line_abs_error";
    case Hist::kCount: break;
  }
  return "unknown";
}

std::span<const double> hist_edges(Hist h) {
  switch (h) {
    case Hist::PropagateNs: return kPropagateNsEdges;
    case Hist::SepMinNegExp: return kSepMinNegExpEdges;
    case Hist::LineAbsError: return kLineAbsErrorEdges;
    case Hist::kCount: break;
  }
  return {};
}

} // namespace bns::obs
