#include "obs/metrics.h"

namespace bns::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::CliquesBuilt: return "cliques_built";
    case Counter::FillEdges: return "fill_edges";
    case Counter::MaxCliqueStates: return "max_clique_states";
    case Counter::MessagesPassed: return "messages_passed";
    case Counter::CptLoads: return "cpt_loads";
    case Counter::ScheduleBuilds: return "schedule_builds";
    case Counter::ScheduleCacheHits: return "schedule_cache_hits";
    case Counter::SegmentSplits: return "segment_splits";
    case Counter::ThreadPoolTasks: return "thread_pool_tasks";
    case Counter::PreallocBytes: return "prealloc_bytes";
    case Counter::SepZeroCells: return "sep_zero_cells";
    case Counter::SepSubnormalCells: return "sep_subnormal_cells";
    case Counter::SepMinNegExp: return "sep_min_neg_exp";
    case Counter::NormResiduePpb: return "norm_residue_ppb";
    case Counter::SweepScenarios: return "sweep_scenarios";
    case Counter::SweepSegmentsReloaded: return "sweep_segments_reloaded";
    case Counter::SweepSegmentsSkipped: return "sweep_segments_skipped";
    case Counter::IncrementalReloads: return "incremental_reloads";
    case Counter::CliquesRestored: return "cliques_restored";
    case Counter::MessagesSkipped: return "messages_skipped";
    case Counter::ArtifactLoads: return "artifact_loads";
    case Counter::ServeConnections: return "serve_connections";
    case Counter::ServeRequests: return "serve_requests";
    case Counter::ServeErrors: return "serve_errors";
    case Counter::kCount: break;
  }
  return "unknown";
}

bool counter_is_gauge(Counter c) {
  return c == Counter::MaxCliqueStates || c == Counter::SepMinNegExp ||
         c == Counter::NormResiduePpb;
}

namespace {

// Static bucket edges; see hist_edges() contract in metrics.h. Sizes
// must stay < kHistMaxBuckets (edges + 1 overflow bucket).
constexpr double kPropagateNsEdges[] = {1e3, 1e4, 1e5, 1e6, 1e7,
                                        1e8, 1e9, 1e10};
constexpr double kSepMinNegExpEdges[] = {1,   16,  64,  128, 256,
                                         512, 768, 1024, 1075};
constexpr double kLineAbsErrorEdges[] = {1e-6, 1e-5, 1e-4, 1e-3, 3e-3,
                                         1e-2, 3e-2, 1e-1, 0.3};
// 1µs .. 10s: pings land in the first buckets, compile-on-first-request
// outliers in the last ones.
constexpr double kRequestNsEdges[] = {1e3, 1e4, 1e5, 1e6, 1e7,
                                      1e8, 1e9, 1e10};

static_assert(std::size(kPropagateNsEdges) + 1 <= kHistMaxBuckets);
static_assert(std::size(kSepMinNegExpEdges) + 1 <= kHistMaxBuckets);
static_assert(std::size(kLineAbsErrorEdges) + 1 <= kHistMaxBuckets);
static_assert(std::size(kRequestNsEdges) + 1 <= kHistMaxBuckets);

} // namespace

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::PropagateNs: return "propagate_ns";
    case Hist::SepMinNegExp: return "sep_min_neg_exp";
    case Hist::LineAbsError: return "line_abs_error";
    case Hist::RequestNs: return "request_ns";
    case Hist::kCount: break;
  }
  return "unknown";
}

std::span<const double> hist_edges(Hist h) {
  switch (h) {
    case Hist::PropagateNs: return kPropagateNsEdges;
    case Hist::SepMinNegExp: return kSepMinNegExpEdges;
    case Hist::LineAbsError: return kLineAbsErrorEdges;
    case Hist::RequestNs: return kRequestNsEdges;
    case Hist::kCount: break;
  }
  return {};
}

// --- labeled serve-layer (RED) metrics -------------------------------------

const char* serve_op_name(ServeOp op) {
  switch (op) {
    case ServeOp::Ping: return "ping";
    case ServeOp::Estimate: return "estimate";
    case ServeOp::Sweep: return "sweep";
    case ServeOp::SweepChunk: return "sweep_chunk";
    case ServeOp::Conditional: return "conditional";
    case ServeOp::Stats: return "stats";
    case ServeOp::Metrics: return "metrics";
    case ServeOp::Invalid: return "invalid";
    case ServeOp::kCount: break;
  }
  return "unknown";
}

const char* error_class_name(ErrorClass e) {
  switch (e) {
    case ErrorClass::None: return "none";
    case ErrorClass::Protocol: return "protocol";
    case ErrorClass::Artifact: return "artifact";
    case ErrorClass::Internal: return "internal";
    case ErrorClass::kCount: break;
  }
  return "unknown";
}

const char* cache_event_name(CacheEvent e) {
  switch (e) {
    case CacheEvent::Hit: return "hit";
    case CacheEvent::Miss: return "miss";
    case CacheEvent::Revalidate: return "revalidate";
    case CacheEvent::Evict: return "evict";
    case CacheEvent::kCount: break;
  }
  return "unknown";
}

namespace {

std::atomic<int> g_shard_claim{0};

} // namespace

int this_thread_shard() {
  thread_local const int shard =
      g_shard_claim.fetch_add(1, std::memory_order_relaxed) %
      kServeMetricShards;
  return shard;
}

ServeMetrics::ServeMetrics() {
  for (Shard& s : shards_) {
    for (OpCell& cell : s.ops) {
      cell.latency.init(Hist::RequestNs, hist_edges(Hist::RequestNs));
    }
  }
  reset();
}

void ServeMetrics::record(ServeOp op, ErrorClass err, std::uint64_t dur_ns) {
  OpCell& cell = shards_[static_cast<std::size_t>(this_thread_shard())]
                     .ops[static_cast<std::size_t>(op)];
  cell.requests.fetch_add(1, std::memory_order_relaxed);
  if (err != ErrorClass::None) {
    cell.errors[static_cast<std::size_t>(err)].fetch_add(
        1, std::memory_order_relaxed);
  }
  cell.latency.add(static_cast<double>(dur_ns));
}

void ServeMetrics::cache_event(CacheEvent e, std::uint64_t n) {
  shards_[static_cast<std::size_t>(this_thread_shard())]
      .cache[static_cast<std::size_t>(e)]
      .fetch_add(n, std::memory_order_relaxed);
}

ServeMetricsSnapshot ServeMetrics::snapshot() const {
  ServeMetricsSnapshot snap;
  for (const Shard& s : shards_) {
    for (int o = 0; o < kNumServeOps; ++o) {
      const OpCell& cell = s.ops[static_cast<std::size_t>(o)];
      ServeOpSnapshot& out = snap.ops[static_cast<std::size_t>(o)];
      out.requests += cell.requests.load(std::memory_order_relaxed);
      for (int e = 0; e < kNumErrorClasses; ++e) {
        out.errors[static_cast<std::size_t>(e)] +=
            cell.errors[static_cast<std::size_t>(e)].load(
                std::memory_order_relaxed);
      }
      for (int b = 0; b < cell.latency.num_buckets(); ++b) {
        const std::uint64_t v = cell.latency.bucket(b);
        out.latency_counts[static_cast<std::size_t>(b)] += v;
        out.latency_total += v;
      }
    }
    for (int e = 0; e < kNumCacheEvents; ++e) {
      snap.cache[static_cast<std::size_t>(e)] +=
          s.cache[static_cast<std::size_t>(e)].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void ServeMetrics::reset() {
  for (Shard& s : shards_) {
    for (OpCell& cell : s.ops) {
      cell.requests.store(0, std::memory_order_relaxed);
      for (auto& e : cell.errors) e.store(0, std::memory_order_relaxed);
      cell.latency.reset();
    }
    for (auto& e : s.cache) e.store(0, std::memory_order_relaxed);
  }
}

} // namespace bns::obs
