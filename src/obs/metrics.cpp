#include "obs/metrics.h"

namespace bns::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::CliquesBuilt: return "cliques_built";
    case Counter::FillEdges: return "fill_edges";
    case Counter::MaxCliqueStates: return "max_clique_states";
    case Counter::MessagesPassed: return "messages_passed";
    case Counter::CptLoads: return "cpt_loads";
    case Counter::ScheduleBuilds: return "schedule_builds";
    case Counter::ScheduleCacheHits: return "schedule_cache_hits";
    case Counter::SegmentSplits: return "segment_splits";
    case Counter::ThreadPoolTasks: return "thread_pool_tasks";
    case Counter::PreallocBytes: return "prealloc_bytes";
    case Counter::kCount: break;
  }
  return "unknown";
}

bool counter_is_gauge(Counter c) { return c == Counter::MaxCliqueStates; }

} // namespace bns::obs
