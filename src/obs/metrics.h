// Monotonic counters and max-gauges for the compile/update pipeline.
//
// The registry is a fixed-size array of relaxed atomics indexed by a
// closed enum, so recording a metric is one fetch_add with no locking
// and no allocation — safe on the zero-allocation update hot path and
// from ThreadPool workers. Aggregation semantics are per-counter: most
// are monotonic sums; gauges (counter_is_gauge) keep the maximum
// observed value instead.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace bns::obs {

enum class Counter : int {
  CliquesBuilt = 0,   // junction-tree cliques constructed (incl. speculative
                      // segment compiles later discarded by the budget check)
  FillEdges,          // triangulation fill-in edges introduced
  MaxCliqueStates,    // gauge: largest clique table (in doubles) seen
  MessagesPassed,     // separator messages computed by propagate()
  CptLoads,           // CPT absorptions performed by load_potentials()
  ScheduleBuilds,     // propagation schedules compiled
  ScheduleCacheHits,  // load_potentials() reusing an already-built schedule
  SegmentSplits,      // segmenter ranges split on state-space blowup
  ThreadPoolTasks,    // indices executed via ThreadPool::parallel_for
  PreallocBytes,      // bytes of preallocated clique/separator/message buffers
  kCount,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

// Stable snake_case identifier, used verbatim in sink output.
const char* counter_name(Counter c);

// True for max-aggregated gauges (MaxCliqueStates).
bool counter_is_gauge(Counter c);

using MetricsSnapshot = std::array<std::uint64_t, kNumCounters>;

class MetricsRegistry {
 public:
  MetricsRegistry() { reset(); }

  // Monotonic add; relaxed, lock-free, allocation-free.
  void add(Counter c, std::uint64_t n = 1) {
    vals_[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }

  // Gauge update: keeps max(current, v). Lock-free CAS loop.
  void set_max(Counter c, std::uint64_t v) {
    auto& slot = vals_[static_cast<std::size_t>(c)];
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < v &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t value(Counter c) const {
    return vals_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto& v : vals_) v.store(0, std::memory_order_relaxed);
  }

  MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    for (int i = 0; i < kNumCounters; ++i) {
      s[static_cast<std::size_t>(i)] =
          vals_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumCounters> vals_;
};

} // namespace bns::obs
