// Monotonic counters, max-gauges, and fixed-bucket histograms for the
// compile/update pipeline.
//
// The registry is a fixed-size array of relaxed atomics indexed by a
// closed enum, so recording a metric is one fetch_add with no locking
// and no allocation — safe on the zero-allocation update hot path and
// from ThreadPool workers. Aggregation semantics are per-counter: most
// are monotonic sums; gauges (counter_is_gauge) keep the maximum
// observed value instead. Histograms are fixed-bucket (edges are static
// per histogram id) with one relaxed fetch_add per sample.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>

namespace bns::obs {

enum class Counter : int {
  CliquesBuilt = 0,   // junction-tree cliques constructed (incl. speculative
                      // segment compiles later discarded by the budget check)
  FillEdges,          // triangulation fill-in edges introduced
  MaxCliqueStates,    // gauge: largest clique table (in doubles) seen
  MessagesPassed,     // separator messages computed by propagate()
  CptLoads,           // CPT absorptions performed by load_potentials()
  ScheduleBuilds,     // propagation schedules compiled
  ScheduleCacheHits,  // load_potentials() reusing an already-built schedule
  SegmentSplits,      // segmenter ranges split on state-space blowup
  ThreadPoolTasks,    // indices executed via ThreadPool::parallel_for
  PreallocBytes,      // bytes of preallocated clique/separator/message buffers
  // Numerical-health probes, reduced once per propagate() sweep from
  // per-edge accumulators (never per message or per cell):
  SepZeroCells,       // exact-zero cells in freshly computed separator
                      // messages (before any normalization)
  SepSubnormalCells,  // positive cells below DBL_MIN (underflow risk)
  SepMinNegExp,       // gauge: largest negated binary exponent of the
                      // smallest positive separator cell (0 = all >= 1)
  NormResiduePpb,     // gauge: |1 - total mass at the roots| in parts per
                      // billion, evidence-free propagations only
  // Scenario-sweep batch engine (core/sweep, estimate_batch):
  SweepScenarios,         // input-model scenarios evaluated by estimate_batch
  SweepSegmentsReloaded,  // segments re-quantified + re-propagated in a sweep
  SweepSegmentsSkipped,   // segments left untouched by incremental reload
  IncrementalReloads,     // engine-level reload_incremental() invocations
  CliquesRestored,        // cliques memcpy-restored instead of reloaded
  MessagesSkipped,        // separator messages restored/skipped, not computed
  // Artifact cache and query daemon (src/artifact, src/serve):
  ArtifactLoads,          // .bnsc artifacts decoded + restored
  ServeConnections,       // client connections accepted by bns_serve
  ServeRequests,          // JSON-lines requests answered (ok or error)
  ServeErrors,            // requests answered with {"ok":false,...}
  kCount,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

// Stable snake_case identifier, used verbatim in sink output.
const char* counter_name(Counter c);

// True for max-aggregated gauges.
bool counter_is_gauge(Counter c);

using MetricsSnapshot = std::array<std::uint64_t, kNumCounters>;

// --- histograms ------------------------------------------------------------

enum class Hist : int {
  PropagateNs = 0, // wall time of each propagate() sweep, in nanoseconds
  SepMinNegExp,    // per-sweep negated exponent of the smallest positive
                   // separator cell (distributional view of SepMinNegExp)
  LineAbsError,    // per-line |estimate - reference| switching-activity
                   // error, filled by the accuracy auditor
  RequestNs,       // serve-layer request latency in nanoseconds (also the
                   // edge set of the per-op ServeMetrics histograms)
  kCount,
};

inline constexpr int kNumHists = static_cast<int>(Hist::kCount);

// Hard cap on buckets per histogram (edges + 1 overflow bucket), so the
// bucket counters can live in a fixed-size atomic array.
inline constexpr int kHistMaxBuckets = 12;

// Stable snake_case identifier, used verbatim in sink output.
const char* hist_name(Hist h);

// Ascending bucket upper bounds (static storage). Bucket i counts
// samples v with edges[i-1] <= v < edges[i]; samples >= edges.back()
// (and NaN) land in the final overflow bucket.
std::span<const double> hist_edges(Hist h);

// Value snapshot of one histogram, deliverable to sinks.
struct HistogramSnapshot {
  Hist id = Hist::PropagateNs;
  std::span<const double> edges;
  std::array<std::uint64_t, kHistMaxBuckets> counts{};
  std::uint64_t total = 0;
};

// Lock-free fixed-bucket histogram. add() is a short linear scan over
// the (static) edge array plus one relaxed fetch_add — no allocation,
// no locking, safe from ThreadPool workers on the update hot path.
class Histogram {
 public:
  Histogram() { reset(); }
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Wires the (static) bucket edges; called once by the owning registry.
  void init(Hist id, std::span<const double> edges) {
    id_ = id;
    edges_ = edges;
  }

  void add(double v) {
    const int n = static_cast<int>(edges_.size());
    int i = 0;
    while (i < n && !(v < edges_[static_cast<std::size_t>(i)])) ++i;
    counts_[static_cast<std::size_t>(i)].fetch_add(
        1, std::memory_order_relaxed);
  }

  Hist id() const { return id_; }
  std::span<const double> edges() const { return edges_; }
  // Buckets = edges().size() + 1 (final bucket is the overflow bucket).
  int num_buckets() const { return static_cast<int>(edges_.size()) + 1; }

  std::uint64_t bucket(int i) const {
    return counts_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (int i = 0; i < num_buckets(); ++i) t += bucket(i);
    return t;
  }

  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

  // Adds another histogram's bucket counts. Precondition: same id/edges.
  void merge_from(const Histogram& other) {
    for (int i = 0; i < num_buckets(); ++i) {
      counts_[static_cast<std::size_t>(i)].fetch_add(
          other.bucket(i), std::memory_order_relaxed);
    }
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.id = id_;
    s.edges = edges_;
    for (int i = 0; i < num_buckets(); ++i) {
      s.counts[static_cast<std::size_t>(i)] = bucket(i);
      s.total += s.counts[static_cast<std::size_t>(i)];
    }
    return s;
  }

 private:
  Hist id_ = Hist::PropagateNs;
  std::span<const double> edges_;
  std::array<std::atomic<std::uint64_t>, kHistMaxBuckets> counts_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() {
    for (int i = 0; i < kNumHists; ++i) {
      const auto h = static_cast<Hist>(i);
      hists_[static_cast<std::size_t>(i)].init(h, hist_edges(h));
    }
    reset();
  }

  // Monotonic add; relaxed, lock-free, allocation-free.
  void add(Counter c, std::uint64_t n = 1) {
    vals_[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }

  // Gauge update: keeps max(current, v). Lock-free CAS loop.
  void set_max(Counter c, std::uint64_t v) {
    auto& slot = vals_[static_cast<std::size_t>(c)];
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < v &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  // Histogram sample; relaxed, lock-free, allocation-free.
  void add_hist(Hist h, double v) {
    hists_[static_cast<std::size_t>(h)].add(v);
  }

  std::uint64_t value(Counter c) const {
    return vals_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }

  const Histogram& hist(Hist h) const {
    return hists_[static_cast<std::size_t>(h)];
  }
  Histogram& hist(Hist h) { return hists_[static_cast<std::size_t>(h)]; }

  // Zeroes every counter, gauge, and histogram bucket so multi-run
  // processes (benches, tests, report compare mode) can start each run
  // from a clean slate.
  void reset() {
    for (auto& v : vals_) v.store(0, std::memory_order_relaxed);
    for (auto& h : hists_) h.reset();
  }

  MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    for (int i = 0; i < kNumCounters; ++i) {
      s[static_cast<std::size_t>(i)] =
          vals_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumCounters> vals_;
  std::array<Histogram, kNumHists> hists_;
};

// --- labeled serve-layer (RED) metrics -------------------------------------
//
// The registry above is a flat, label-free counter set — right for the
// compile/update pipeline, wrong for a daemon answering heterogeneous
// requests. The serve layer needs rates/errors/durations *per op* and a
// cache-behavior breakdown, still recordable from the request hot path
// with no locks and no allocation. Labels here are closed enums, so the
// whole labeled registry is a fixed array of atomics, sharded per worker
// thread to keep concurrent requests off each other's cache lines and
// merged only on scrape.

// Every request op the protocol answers. Invalid covers requests whose
// op never resolved (unparseable JSON, unknown op name).
enum class ServeOp : int {
  Ping = 0,
  Estimate,
  Sweep,
  SweepChunk,
  Conditional,
  Stats,
  Metrics,
  Invalid,
  kCount,
};

inline constexpr int kNumServeOps = static_cast<int>(ServeOp::kCount);

// Stable snake_case identifier, used verbatim in exposition output.
const char* serve_op_name(ServeOp op);

// How a request failed. Protocol = request-shape rejects (the
// RequestError layer), Artifact = .bnsc load/decode failures
// (ArtifactError), Internal = anything else that crossed the handler.
enum class ErrorClass : int { None = 0, Protocol, Artifact, Internal, kCount };

inline constexpr int kNumErrorClasses = static_cast<int>(ErrorClass::kCount);

const char* error_class_name(ErrorClass e);

// SessionCache lookup outcomes. Revalidate = the cached entry's file
// mtime changed and the model was reloaded; Evict = an LRU entry was
// dropped to respect the cache capacity.
enum class CacheEvent : int { Hit = 0, Miss, Revalidate, Evict, kCount };

inline constexpr int kNumCacheEvents = static_cast<int>(CacheEvent::kCount);

const char* cache_event_name(CacheEvent e);

// Stable worker-shard index for the calling thread, in
// [0, kServeMetricShards). Claimed round-robin on first use; more
// threads than shards simply share (every cell is atomic).
inline constexpr int kServeMetricShards = 16;
int this_thread_shard();

// Merged value snapshot of one op's cells.
struct ServeOpSnapshot {
  std::uint64_t requests = 0;
  std::array<std::uint64_t, kNumErrorClasses> errors{}; // [None] unused
  std::array<std::uint64_t, kHistMaxBuckets> latency_counts{};
  std::uint64_t latency_total = 0;

  std::uint64_t errors_total() const {
    std::uint64_t t = 0;
    for (int i = 1; i < kNumErrorClasses; ++i)
      t += errors[static_cast<std::size_t>(i)];
    return t;
  }
};

struct ServeMetricsSnapshot {
  std::array<ServeOpSnapshot, kNumServeOps> ops{};
  std::array<std::uint64_t, kNumCacheEvents> cache{};

  const ServeOpSnapshot& op(ServeOp o) const {
    return ops[static_cast<std::size_t>(o)];
  }
  std::uint64_t cache_count(CacheEvent e) const {
    return cache[static_cast<std::size_t>(e)];
  }
  std::uint64_t requests_total() const {
    std::uint64_t t = 0;
    for (const ServeOpSnapshot& o : ops) t += o.requests;
    return t;
  }
  std::uint64_t errors_total() const {
    std::uint64_t t = 0;
    for (const ServeOpSnapshot& o : ops) t += o.errors_total();
    return t;
  }
};

// The labeled registry: per-op request counters, per-op-per-class error
// counters, per-op latency histograms (Hist::RequestNs edges) and the
// cache-event counters. record() touches only the calling thread's
// shard — one relaxed fetch_add per cell, no locks, no allocation — so
// 8 workers hammering it scale without a shared hot line; snapshot()
// merges all shards and is the only cross-shard reader.
class ServeMetrics {
 public:
  ServeMetrics();
  ServeMetrics(const ServeMetrics&) = delete;
  ServeMetrics& operator=(const ServeMetrics&) = delete;

  // One answered request: its op, how it failed (ErrorClass::None for a
  // success), and its wall time. Allocation-free, lock-free.
  void record(ServeOp op, ErrorClass err, std::uint64_t dur_ns);

  // One SessionCache lookup outcome. Allocation-free, lock-free.
  void cache_event(CacheEvent e, std::uint64_t n = 1);

  // Merged totals across every shard.
  ServeMetricsSnapshot snapshot() const;

  void reset();

 private:
  struct OpCell {
    std::atomic<std::uint64_t> requests{0};
    std::array<std::atomic<std::uint64_t>, kNumErrorClasses> errors{};
    Histogram latency;
  };
  struct Shard {
    std::array<OpCell, kNumServeOps> ops;
    std::array<std::atomic<std::uint64_t>, kNumCacheEvents> cache{};
  };

  std::array<Shard, kServeMetricShards> shards_;
};

} // namespace bns::obs
