// Pairwise spatio-temporal correlation-coefficient propagation — the
// algorithmic family of Ercolani'92 / Marculescu'94/'98 ([12], [7], [8],
// [9] in the paper) that Table 2 compares against.
//
// Per line: the stationary 4-state transition distribution (temporal
// lag-1 correlation, like the BN). Between lines: the same-time-step
// spatial correlation coefficient
//     SC(x, y) = P(x_t = 1, y_t = 1) / (P(x)P(y)),
// maintained for every pair of *live* lines (lines with remaining
// fanout). Gate outputs are computed by enumerating fanin transition
// assignments weighted by the product of the marginals and of the
// pairwise corrections at both time steps; higher-order correlations are
// approximated as products of pairwise ones (the composition of [8]).
// This is precisely the approximation whose failure on reconvergent
// logic motivates the paper's exact BN model.
#pragma once

#include <array>
#include <vector>

#include "netlist/netlist.h"
#include "sim/input_model.h"

namespace bns {

struct CorrelationOptions {
  // Clamp for probabilities entering divisions.
  double eps = 1e-12;
};

struct CorrelationResult {
  std::vector<std::array<double, 4>> dist; // per NodeId
  double seconds = 0.0;
  std::size_t max_live_pairs = 0; // peak number of tracked coefficients

  std::vector<double> activities() const;
};

CorrelationResult estimate_correlation(const Netlist& nl,
                                       const InputModel& model,
                                       const CorrelationOptions& opts = {});

} // namespace bns
