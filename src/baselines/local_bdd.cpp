#include "baselines/local_bdd.h"

#include <algorithm>
#include <unordered_map>

#include "bdd/circuit_bdd.h"
#include "bdd/pair_prob.h"
#include "util/assert.h"
#include "util/timer.h"

namespace bns {
namespace {

// The fanin region of a target line truncated at `levels`: `internal`
// holds the region's gates in ascending (= topological) order ending
// with the target itself; `frontier` holds the independent sources.
struct Region {
  std::vector<NodeId> internal;
  std::vector<NodeId> frontier;
};

Region build_region(const Netlist& nl, NodeId target, int levels,
                    int max_frontier) {
  for (int lv = levels; lv >= 1; --lv) {
    Region r;
    // FIFO BFS: first visit = shortest distance from the target, so a
    // reconvergent net stays internal whenever any short path reaches it.
    std::unordered_map<NodeId, int> depth; // node -> distance from target
    std::vector<NodeId> queue{target};
    depth.emplace(target, 0);
    std::vector<NodeId> frontier_set;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId id = queue[head];
      const int d = depth.at(id);
      const Node& n = nl.node(id);
      const bool is_source = n.type == GateType::Input || n.fanin.empty();
      if ((d == lv && id != target) || is_source) {
        frontier_set.push_back(id);
        continue;
      }
      r.internal.push_back(id);
      for (NodeId f : n.fanin) {
        if (depth.emplace(f, d + 1).second) queue.push_back(f);
      }
    }
    std::sort(r.internal.begin(), r.internal.end());
    std::sort(frontier_set.begin(), frontier_set.end());
    frontier_set.erase(std::unique(frontier_set.begin(), frontier_set.end()),
                       frontier_set.end());
    // A net can appear both internal (via a short path) and frontier
    // (via a path that hits the depth limit): internal wins — it is
    // modeled exactly there.
    std::vector<NodeId> frontier;
    for (NodeId f : frontier_set) {
      if (!std::binary_search(r.internal.begin(), r.internal.end(), f)) {
        frontier.push_back(f);
      }
    }
    r.frontier = std::move(frontier);
    if (static_cast<int>(r.frontier.size()) <= max_frontier) return r;
  }
  // levels = 0: direct fanins are the frontier.
  Region r;
  r.internal.push_back(target);
  r.frontier = nl.node(target).fanin;
  std::sort(r.frontier.begin(), r.frontier.end());
  r.frontier.erase(std::unique(r.frontier.begin(), r.frontier.end()),
                   r.frontier.end());
  return r;
}

} // namespace

std::vector<double> LocalBddResult::activities() const {
  std::vector<double> out(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) out[i] = activity_of(dist[i]);
  return out;
}

LocalBddResult estimate_local_bdd(const Netlist& nl, const InputModel& model,
                                  const LocalBddOptions& opts) {
  BNS_EXPECTS(model.num_inputs() == nl.num_inputs());
  BNS_EXPECTS(opts.levels >= 0);
  BNS_EXPECTS(opts.max_region_inputs >= 1);
  Timer t;

  LocalBddResult r;
  r.dist.assign(static_cast<std::size_t>(nl.num_nodes()), {});

  std::vector<int> pi_index(static_cast<std::size_t>(nl.num_nodes()), -1);
  for (int i = 0; i < nl.num_inputs(); ++i) {
    pi_index[static_cast<std::size_t>(nl.inputs()[static_cast<std::size_t>(i)])] = i;
  }

  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& nd = nl.node(id);
    auto& out = r.dist[static_cast<std::size_t>(id)];
    if (nd.type == GateType::Input) {
      out = model.transition_dist(pi_index[static_cast<std::size_t>(id)]);
      continue;
    }
    if (nd.type == GateType::Const0) {
      out = {1, 0, 0, 0};
      continue;
    }
    if (nd.type == GateType::Const1) {
      out = {0, 0, 0, 1};
      continue;
    }

    // Exact within the truncated region; frontier nets are independent
    // 4-state sources with their previously computed distributions.
    for (int lv = opts.levels;; --lv) {
      const Region region = build_region(nl, id, lv, opts.max_region_inputs);
      r.max_region_size = std::max(
          r.max_region_size, static_cast<int>(region.internal.size() +
                                              region.frontier.size()));
      try {
        BddManager mgr(2 * static_cast<int>(region.frontier.size()),
                       opts.max_nodes);
        std::vector<std::array<double, 4>> sources;
        std::unordered_map<NodeId, std::pair<BddRef, BddRef>> fn;
        for (std::size_t i = 0; i < region.frontier.size(); ++i) {
          const NodeId f = region.frontier[i];
          sources.push_back(r.dist[static_cast<std::size_t>(f)]);
          fn.emplace(f, std::make_pair(mgr.var(2 * static_cast<int>(i)),
                                       mgr.var(2 * static_cast<int>(i) + 1)));
        }
        for (NodeId g : region.internal) {
          const Node& gn = nl.node(g);
          std::vector<BddRef> ops_prev;
          std::vector<BddRef> ops_cur;
          for (NodeId f : gn.fanin) {
            const auto& [p, c] = fn.at(f);
            ops_prev.push_back(p);
            ops_cur.push_back(c);
          }
          fn.emplace(g, std::make_pair(build_gate_bdd(mgr, gn, ops_prev),
                                       build_gate_bdd(mgr, gn, ops_cur)));
        }
        const auto& [fp, fc] = fn.at(id);
        PairProbEvaluator pp(mgr, sources);
        const double p01 = pp.prob(mgr.land(mgr.lnot(fp), fc));
        const double p10 = pp.prob(mgr.land(fp, mgr.lnot(fc)));
        const double p11 = pp.prob(mgr.land(fp, fc));
        out = {std::max(0.0, 1.0 - p01 - p10 - p11), p01, p10, p11};
        break;
      } catch (const BddNodeLimit&) {
        BNS_ASSERT_MSG(lv > 0, "level-0 region exceeded the node budget");
        // Shrink the region and retry.
      }
    }
  }
  r.seconds = t.seconds();
  return r;
}

} // namespace bns
