// Najm's transition-density propagation (reference [11] of the paper):
//   D(y) = sum_i P(dy/dx_i) * D(x_i)
// with Boolean differences evaluated gate-locally under spatial
// independence, and signal probabilities propagated the same way.
//
// Densities add transitions that in a zero-delay semantics can cancel
// (simultaneous input switching), so the per-cycle activity estimate
// min(D, 1) systematically *over*-estimates switching on reconvergent
// and wide-fanin logic — one of the inaccuracies the paper contrasts
// against.
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "sim/input_model.h"

namespace bns {

struct TransitionDensityResult {
  std::vector<double> signal_prob; // P(line = 1), independence model
  std::vector<double> density;     // expected transitions per cycle
  double seconds = 0.0;

  // Per-cycle switching activity estimate: density clamped to [0, 1].
  std::vector<double> activities() const;
};

TransitionDensityResult estimate_transition_density(const Netlist& nl,
                                                    const InputModel& model);

} // namespace bns
