#include "baselines/monte_carlo.h"

#include <cmath>

#include "sim/simulator.h"
#include "util/assert.h"
#include "util/timer.h"

namespace bns {
namespace {

// Inverse standard-normal CDF for the upper tail (Acklam-style rational
// approximation is overkill here; the harness only uses a handful of
// common alphas, so a small bisection on the complementary error
// function keeps the code dependency-free and exact to ~1e-10).
double z_upper(double tail) {
  BNS_EXPECTS(tail > 0.0 && tail < 0.5);
  double lo = 0.0;
  double hi = 10.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double upper = 0.5 * std::erfc(mid / std::sqrt(2.0));
    if (upper > tail) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

} // namespace

std::vector<double> MonteCarloResult::activities() const {
  std::vector<double> out(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) out[i] = activity_of(dist[i]);
  return out;
}

MonteCarloResult estimate_monte_carlo(const Netlist& nl,
                                      const InputModel& model,
                                      const MonteCarloOptions& opts) {
  BNS_EXPECTS(model.num_inputs() == nl.num_inputs());
  BNS_EXPECTS(opts.batch_pairs > 0);
  Timer t;

  const double z = z_upper(opts.alpha / 2.0);
  const SwitchingSimulator sim(nl);
  const std::size_t n = static_cast<std::size_t>(nl.num_nodes());

  std::vector<std::array<std::uint64_t, 4>> counts(n, std::array<std::uint64_t, 4>{});
  std::uint64_t total = 0;
  std::uint64_t seed = opts.seed;
  bool converged = false;

  MonteCarloResult r;
  r.half_width.assign(n, 1.0);

  while (total < opts.max_pairs && !converged) {
    // Each batch is an independent stream (fresh seed) — batches are
    // i.i.d., so pooling the counters is valid.
    const SimResult batch = sim.run(model, opts.batch_pairs, seed++);
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      const auto& c = batch.counts(id);
      for (int s = 0; s < 4; ++s) {
        counts[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)] +=
            c[static_cast<std::size_t>(s)];
      }
    }
    total += batch.num_samples();

    converged = true;
    for (std::size_t i = 0; i < n && converged; ++i) {
      const double sw = static_cast<double>(counts[i][T01] + counts[i][T10]);
      const double a = sw / static_cast<double>(total);
      const double hw =
          z * std::sqrt(std::max(a * (1.0 - a), 1e-12) /
                        static_cast<double>(total));
      r.half_width[i] = hw;
      if (hw > std::max(opts.abs_tol, opts.rel_tol * a)) converged = false;
    }
    if (!converged) {
      // Refresh the half-widths for reporting even when stopping early.
      for (std::size_t i = 0; i < n; ++i) {
        const double a =
            static_cast<double>(counts[i][T01] + counts[i][T10]) /
            static_cast<double>(total);
        r.half_width[i] =
            z * std::sqrt(std::max(a * (1.0 - a), 1e-12) /
                          static_cast<double>(total));
      }
    }
  }

  r.dist.assign(n, {});
  const double inv = 1.0 / static_cast<double>(total);
  for (std::size_t i = 0; i < n; ++i) {
    for (int s = 0; s < 4; ++s) {
      r.dist[i][static_cast<std::size_t>(s)] =
          static_cast<double>(counts[i][static_cast<std::size_t>(s)]) * inv;
    }
  }
  r.pairs_used = total;
  r.converged = converged;
  r.seconds = t.seconds();
  return r;
}

} // namespace bns
