#include "baselines/transition_density.h"

#include <algorithm>

#include "netlist/transforms.h"
#include "netlist/truth_table.h"
#include "util/assert.h"
#include "util/timer.h"

namespace bns {
namespace {

// P(f(..., x_i=0, ...) != f(..., x_i=1, ...)) with the other inputs
// independent with probabilities `p`.
double boolean_difference(const TruthTable& tt, int i,
                          std::span<const double> p) {
  const int k = tt.num_inputs();
  double total = 0.0;
  bool in[TruthTable::kMaxInputs];
  const std::uint64_t n = 1ULL << (k - 1);
  for (std::uint64_t a = 0; a < n; ++a) {
    double w = 1.0;
    int bit = 0;
    for (int j = 0; j < k; ++j) {
      if (j == i) continue;
      const bool v = (a >> bit) & 1;
      ++bit;
      in[j] = v;
      w *= v ? p[static_cast<std::size_t>(j)] : 1.0 - p[static_cast<std::size_t>(j)];
    }
    if (w == 0.0) continue;
    in[i] = false;
    const bool f0 = tt.eval(std::span<const bool>(in, static_cast<std::size_t>(k)));
    in[i] = true;
    const bool f1 = tt.eval(std::span<const bool>(in, static_cast<std::size_t>(k)));
    if (f0 != f1) total += w;
  }
  return total;
}

double signal_prob_of(const TruthTable& tt, std::span<const double> p) {
  const int k = tt.num_inputs();
  double total = 0.0;
  bool in[TruthTable::kMaxInputs];
  const std::uint64_t n = 1ULL << k;
  for (std::uint64_t a = 0; a < n; ++a) {
    double w = 1.0;
    for (int j = 0; j < k; ++j) {
      const bool v = (a >> j) & 1;
      in[j] = v;
      w *= v ? p[static_cast<std::size_t>(j)] : 1.0 - p[static_cast<std::size_t>(j)];
    }
    if (w != 0.0 && tt.eval(std::span<const bool>(in, static_cast<std::size_t>(k)))) {
      total += w;
    }
  }
  return total;
}

} // namespace

std::vector<double> TransitionDensityResult::activities() const {
  std::vector<double> out(density.size());
  for (std::size_t i = 0; i < density.size(); ++i) {
    out[i] = std::clamp(density[i], 0.0, 1.0);
  }
  return out;
}

TransitionDensityResult estimate_transition_density(const Netlist& nl,
                                                    const InputModel& model) {
  BNS_EXPECTS(model.num_inputs() == nl.num_inputs());
  if (nl.max_fanin() > 12) {
    const MappedNetlist m = decompose_wide_gates(nl, 4);
    TransitionDensityResult full = estimate_transition_density(m.netlist, model);
    TransitionDensityResult r;
    r.seconds = full.seconds;
    r.signal_prob.resize(static_cast<std::size_t>(nl.num_nodes()));
    r.density.resize(static_cast<std::size_t>(nl.num_nodes()));
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      const std::size_t src = static_cast<std::size_t>(m.map[static_cast<std::size_t>(id)]);
      r.signal_prob[static_cast<std::size_t>(id)] = full.signal_prob[src];
      r.density[static_cast<std::size_t>(id)] = full.density[src];
    }
    return r;
  }
  Timer t;
  TransitionDensityResult r;
  const std::size_t n = static_cast<std::size_t>(nl.num_nodes());
  r.signal_prob.assign(n, 0.0);
  r.density.assign(n, 0.0);

  std::vector<int> pi_index(n, -1);
  for (int i = 0; i < nl.num_inputs(); ++i) {
    pi_index[static_cast<std::size_t>(nl.inputs()[static_cast<std::size_t>(i)])] = i;
  }

  std::vector<double> fp;
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& nd = nl.node(id);
    switch (nd.type) {
      case GateType::Input: {
        const auto d = model.transition_dist(pi_index[static_cast<std::size_t>(id)]);
        r.signal_prob[static_cast<std::size_t>(id)] = d[T01] + d[T11];
        r.density[static_cast<std::size_t>(id)] = d[T01] + d[T10];
        break;
      }
      case GateType::Const0:
      case GateType::Const1:
        r.signal_prob[static_cast<std::size_t>(id)] =
            nd.type == GateType::Const1 ? 1.0 : 0.0;
        break;
      default: {
        fp.clear();
        for (NodeId f : nd.fanin) fp.push_back(r.signal_prob[static_cast<std::size_t>(f)]);
        const TruthTable tt =
            nd.type == GateType::Lut
                ? *nd.lut
                : TruthTable::of_gate(nd.type, static_cast<int>(nd.fanin.size()));
        r.signal_prob[static_cast<std::size_t>(id)] = signal_prob_of(tt, fp);
        double d = 0.0;
        for (int i = 0; i < static_cast<int>(nd.fanin.size()); ++i) {
          d += boolean_difference(tt, i, fp) *
               r.density[static_cast<std::size_t>(nd.fanin[static_cast<std::size_t>(i)])];
        }
        r.density[static_cast<std::size_t>(id)] = d;
        break;
      }
    }
  }
  r.seconds = t.seconds();
  return r;
}

} // namespace bns
