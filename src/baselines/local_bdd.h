// Local-OBDD switching estimation — the algorithmic family of tagged
// probabilistic simulation (Ding–Tsui–Pedram, reference [13] of the
// paper): each line's transition distribution is computed *exactly*
// within a truncated fanin region by a local BDD, while nets at the
// region's frontier are treated as independent sources with the
// distributions computed for them earlier.
//
// `levels` controls the truncation depth: levels = 0 degenerates to the
// independence estimator; levels -> circuit depth approaches the exact
// global-BDD method (with its blow-up). The paper's critique — "the
// signal correlations are captured by using local OBDDs[, however]
// spatio-temporal correlation between the signals is not discussed" —
// maps to the approximation at the frontier, which this implementation
// makes explicit and measurable.
#pragma once

#include <array>
#include <vector>

#include "netlist/netlist.h"
#include "sim/input_model.h"

namespace bns {

struct LocalBddOptions {
  int levels = 4;                 // fanin-region depth per line
  int max_region_inputs = 16;     // frontier cap (region shrinks to fit)
  std::size_t max_nodes = 1u << 18; // per-region BDD budget
};

struct LocalBddResult {
  std::vector<std::array<double, 4>> dist; // per NodeId
  double seconds = 0.0;
  int max_region_size = 0; // largest fanin region (in nets) used

  std::vector<double> activities() const;
};

LocalBddResult estimate_local_bdd(const Netlist& nl, const InputModel& model,
                                  const LocalBddOptions& opts = {});

} // namespace bns
