// Zero-correlation baseline (Parker–McCluskey style, lifted to 4-state
// transition variables): propagates each line's stationary transition
// distribution through its gate assuming all fanins are mutually
// independent. Temporal (lag-1) correlation of each line is kept — the
// 4-state encoding carries it — but all spatial correlation is dropped,
// which is exactly the assumption the paper's BN removes.
#pragma once

#include <array>
#include <vector>

#include "netlist/netlist.h"
#include "sim/input_model.h"

namespace bns {

struct IndependenceResult {
  std::vector<std::array<double, 4>> dist; // per NodeId
  double seconds = 0.0;

  std::vector<double> activities() const;
};

IndependenceResult estimate_independence(const Netlist& nl,
                                         const InputModel& model);

} // namespace bns
