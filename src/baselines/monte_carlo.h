// Statistically simulative estimation (Burch–Najm–Trick, reference [6]
// of the paper): Monte-Carlo logic simulation with a per-line normal-
// approximation stopping criterion. The paper's taxonomy places this in
// the "estimation by simulation" family — accurate but input-sensitive
// and slow compared to probabilistic propagation; this implementation
// exists to quantify that trade on the same circuits.
//
// Sampling proceeds in batches of 64-lane bit-parallel rounds; after
// each batch the half-width of the (1 - alpha) confidence interval of
// every line's activity is checked, and sampling stops when
//     half_width <= max(abs_tol, rel_tol * activity)
// holds for every line, or when `max_pairs` is reached.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sim/input_model.h"

namespace bns {

struct MonteCarloOptions {
  double alpha = 0.01;      // two-sided confidence level (99% default)
  double abs_tol = 0.005;   // absolute half-width floor
  double rel_tol = 0.05;    // relative half-width target
  std::uint64_t batch_pairs = 1 << 16;
  std::uint64_t max_pairs = 1 << 26;
  std::uint64_t seed = 1;
};

struct MonteCarloResult {
  std::vector<std::array<double, 4>> dist; // per NodeId
  std::vector<double> half_width;          // CI half-width of the activity
  std::uint64_t pairs_used = 0;
  bool converged = false; // all lines met the tolerance before max_pairs
  double seconds = 0.0;

  std::vector<double> activities() const;
};

MonteCarloResult estimate_monte_carlo(const Netlist& nl,
                                      const InputModel& model,
                                      const MonteCarloOptions& opts = {});

} // namespace bns
