#include "baselines/independence.h"

#include "netlist/transforms.h"
#include "netlist/truth_table.h"
#include "util/assert.h"
#include "util/timer.h"

namespace bns {
namespace {

// Output transition distribution of a function under independent fanin
// transition distributions: a 4^k weighted enumeration.
std::array<double, 4> propagate_gate(const TruthTable& tt,
                                     std::span<const std::array<double, 4>> in) {
  const int k = tt.num_inputs();
  std::array<double, 4> out{};
  bool prev[TruthTable::kMaxInputs];
  bool cur[TruthTable::kMaxInputs];
  const std::uint64_t n = 1ULL << (2 * k);
  for (std::uint64_t a = 0; a < n; ++a) {
    double w = 1.0;
    for (int i = 0; i < k; ++i) {
      const int s = static_cast<int>((a >> (2 * i)) & 3);
      w *= in[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
      prev[i] = (s >> 1) != 0;
      cur[i] = (s & 1) != 0;
    }
    if (w == 0.0) continue;
    const int op = tt.eval(std::span<const bool>(prev, static_cast<std::size_t>(k))) ? 1 : 0;
    const int oc = tt.eval(std::span<const bool>(cur, static_cast<std::size_t>(k))) ? 1 : 0;
    out[static_cast<std::size_t>(op * 2 + oc)] += w;
  }
  // Renormalize: the exact sum is 1, and letting rounding drift pass
  // through compounds exponentially along deep reconvergent chains.
  const double z = out[0] + out[1] + out[2] + out[3];
  BNS_ASSERT(z > 0.0);
  for (double& v : out) v /= z;
  return out;
}

} // namespace

std::vector<double> IndependenceResult::activities() const {
  std::vector<double> out(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) out[i] = activity_of(dist[i]);
  return out;
}

IndependenceResult estimate_independence(const Netlist& nl,
                                         const InputModel& model) {
  BNS_EXPECTS(model.num_inputs() == nl.num_inputs());
  if (nl.max_fanin() > 8) {
    const MappedNetlist m = decompose_wide_gates(nl, 4);
    IndependenceResult full = estimate_independence(m.netlist, model);
    IndependenceResult r;
    r.seconds = full.seconds;
    r.dist.resize(static_cast<std::size_t>(nl.num_nodes()));
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      r.dist[static_cast<std::size_t>(id)] =
          full.dist[static_cast<std::size_t>(m.map[static_cast<std::size_t>(id)])];
    }
    return r;
  }
  Timer t;
  IndependenceResult r;
  r.dist.assign(static_cast<std::size_t>(nl.num_nodes()), {});

  std::vector<int> pi_index(static_cast<std::size_t>(nl.num_nodes()), -1);
  for (int i = 0; i < nl.num_inputs(); ++i) {
    pi_index[static_cast<std::size_t>(nl.inputs()[static_cast<std::size_t>(i)])] = i;
  }

  std::vector<std::array<double, 4>> fanin_dists;
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    auto& d = r.dist[static_cast<std::size_t>(id)];
    switch (n.type) {
      case GateType::Input:
        d = model.transition_dist(pi_index[static_cast<std::size_t>(id)]);
        break;
      case GateType::Const0:
        d = {1, 0, 0, 0};
        break;
      case GateType::Const1:
        d = {0, 0, 0, 1};
        break;
      default: {
        fanin_dists.clear();
        for (NodeId f : n.fanin) {
          fanin_dists.push_back(r.dist[static_cast<std::size_t>(f)]);
        }
        const TruthTable tt =
            n.type == GateType::Lut
                ? *n.lut
                : TruthTable::of_gate(n.type, static_cast<int>(n.fanin.size()));
        d = propagate_gate(tt, fanin_dists);
        break;
      }
    }
  }
  r.seconds = t.seconds();
  return r;
}

} // namespace bns
