#include "baselines/correlation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "netlist/transforms.h"
#include "netlist/truth_table.h"
#include "util/assert.h"
#include "util/timer.h"

namespace bns {
namespace {

// Joint value table of two lines from their 1-probabilities and the
// correlation coefficient SC = P(1,1)/(px*py), Frechet-clamped.
struct PairJoint {
  // joint[a][b] = P(x = a, y = b); corr[a][b] = joint / (P(a) P(b)).
  double corr[2][2];

  PairJoint(double px, double py, double sc, double eps) {
    const double lo = std::max(0.0, px + py - 1.0);
    const double hi = std::min(px, py);
    const double p11 = std::clamp(sc * px * py, lo, hi);
    const double j[2][2] = {{1.0 - px - py + p11, py - p11},
                            {px - p11, p11}};
    const double pa[2] = {std::max(eps, 1.0 - px), std::max(eps, px)};
    const double pb[2] = {std::max(eps, 1.0 - py), std::max(eps, py)};
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        corr[a][b] = std::max(0.0, j[a][b]) / (pa[a] * pb[b]);
      }
    }
  }
};

class Propagator {
 public:
  Propagator(const Netlist& nl, const InputModel& model,
             const CorrelationOptions& opts)
      : nl_(nl), model_(model), opts_(opts) {
    const std::size_t n = static_cast<std::size_t>(nl.num_nodes());
    result_.dist.assign(n, {});
    p_.assign(n, 0.0);
    partners_.assign(n, {});
    uses_left_ = nl.fanout_counts();
  }

  CorrelationResult run() {
    Timer t;
    std::vector<int> pi_index(static_cast<std::size_t>(nl_.num_nodes()), -1);
    for (int i = 0; i < nl_.num_inputs(); ++i) {
      pi_index[static_cast<std::size_t>(nl_.inputs()[static_cast<std::size_t>(i)])] = i;
    }

    for (NodeId id = 0; id < nl_.num_nodes(); ++id) {
      const Node& nd = nl_.node(id);
      switch (nd.type) {
        case GateType::Input:
          set_dist(id, model_.transition_dist(pi_index[static_cast<std::size_t>(id)]));
          break;
        case GateType::Const0:
          set_dist(id, {1, 0, 0, 0});
          break;
        case GateType::Const1:
          set_dist(id, {0, 0, 0, 1});
          break;
        default:
          process_gate(id, nd);
          break;
      }
    }
    result_.seconds = t.seconds();
    return std::move(result_);
  }

 private:
  void set_dist(NodeId id, const std::array<double, 4>& d) {
    result_.dist[static_cast<std::size_t>(id)] = d;
    p_[static_cast<std::size_t>(id)] = d[T01] + d[T11];
  }

  double sc_of(NodeId a, NodeId b) const {
    const auto& m = partners_[static_cast<std::size_t>(a)];
    const auto it = m.find(b);
    return it == m.end() ? 1.0 : it->second;
  }

  void set_sc(NodeId a, NodeId b, double sc) {
    if (std::abs(sc - 1.0) < 1e-9) return;
    auto& ma = partners_[static_cast<std::size_t>(a)];
    if (ma.emplace(b, sc).second) {
      partners_[static_cast<std::size_t>(b)].emplace(a, sc);
      ++live_pairs_;
      result_.max_live_pairs = std::max(result_.max_live_pairs, live_pairs_);
    } else {
      ma[b] = sc;
      partners_[static_cast<std::size_t>(b)][a] = sc;
    }
  }

  // Grouped PIs are spatially correlated; seed their pairwise
  // coefficients before the first gate consumes them (inputs always
  // precede gates in NodeId order).
  void seed_groups_now() {
    if (groups_seeded_) return;
    groups_seeded_ = true;
    const auto& inputs = nl_.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const InputSpec& si = model_.spec(static_cast<int>(i));
      if (si.group < 0) continue;
      for (std::size_t j = i + 1; j < inputs.size(); ++j) {
        const InputSpec& sj = model_.spec(static_cast<int>(j));
        if (sj.group != si.group) continue;
        // P(x_i = 1, x_j = 1) via the shared source s:
        //   x = s xor n, flips independent.
        const GroupSpec& g = model_.group(si.group);
        const double ps = g.p;
        const double p11 = ps * (1 - si.flip) * (1 - sj.flip) +
                           (1 - ps) * si.flip * sj.flip;
        const double pi1 = p_[static_cast<std::size_t>(inputs[i])];
        const double pj1 = p_[static_cast<std::size_t>(inputs[j])];
        if (pi1 > opts_.eps && pj1 > opts_.eps) {
          set_sc(inputs[i], inputs[j], p11 / (pi1 * pj1));
        }
      }
    }
  }

  void process_gate(NodeId id, const Node& nd) {
    seed_groups_now();
    const int k = static_cast<int>(nd.fanin.size());
    BNS_EXPECTS(k <= 8); // 4^8 enumeration cap for the baseline
    const TruthTable tt =
        nd.type == GateType::Lut ? *nd.lut
                                 : TruthTable::of_gate(nd.type, k);

    // Pairwise correction tables among the fanins.
    std::vector<PairJoint> pj;
    std::vector<std::pair<int, int>> pj_idx;
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        const NodeId a = nd.fanin[static_cast<std::size_t>(i)];
        const NodeId b = nd.fanin[static_cast<std::size_t>(j)];
        const double sc = a == b ? 1.0 / std::max(opts_.eps, p_[static_cast<std::size_t>(a)]) : sc_of(a, b);
        pj.emplace_back(p_[static_cast<std::size_t>(a)], p_[static_cast<std::size_t>(b)], sc,
                        opts_.eps);
        pj_idx.emplace_back(i, j);
      }
    }

    // 4-state output distribution.
    std::array<double, 4> out{};
    bool prev[8];
    bool cur[8];
    const std::uint64_t n_assign = 1ULL << (2 * k);
    for (std::uint64_t a = 0; a < n_assign; ++a) {
      double w = 1.0;
      for (int i = 0; i < k && w != 0.0; ++i) {
        const int s = static_cast<int>((a >> (2 * i)) & 3);
        w *= result_.dist[static_cast<std::size_t>(
            nd.fanin[static_cast<std::size_t>(i)])][static_cast<std::size_t>(s)];
        prev[i] = (s >> 1) != 0;
        cur[i] = (s & 1) != 0;
      }
      if (w == 0.0) continue;
      for (std::size_t e = 0; e < pj.size(); ++e) {
        const auto [i, j] = pj_idx[e];
        w *= pj[e].corr[prev[i]][prev[j]] * pj[e].corr[cur[i]][cur[j]];
      }
      if (w == 0.0) continue;
      const int op = tt.eval(std::span<const bool>(prev, static_cast<std::size_t>(k))) ? 1 : 0;
      const int oc = tt.eval(std::span<const bool>(cur, static_cast<std::size_t>(k))) ? 1 : 0;
      out[static_cast<std::size_t>(op * 2 + oc)] += w;
    }
    double z = out[0] + out[1] + out[2] + out[3];
    if (z <= opts_.eps) {
      out = {0.25, 0.25, 0.25, 0.25};
      z = 1.0;
    }
    for (double& v : out) v /= z;
    set_dist(id, out);

    compute_output_correlations(id, nd, tt, pj, pj_idx);

    // Retire fanins with no remaining consumers.
    for (NodeId f : nd.fanin) {
      if (--uses_left_[static_cast<std::size_t>(f)] <= 0) retire(f);
    }
  }

  void compute_output_correlations(NodeId id, const Node& nd,
                                   const TruthTable& tt,
                                   const std::vector<PairJoint>& pj,
                                   const std::vector<std::pair<int, int>>& pj_idx) {
    const double py = p_[static_cast<std::size_t>(id)];
    if (py <= opts_.eps || py >= 1.0 - opts_.eps) return;
    const int k = static_cast<int>(nd.fanin.size());

    // Candidate partners: the fanins and everything correlated with them.
    std::vector<NodeId> cands;
    auto consider = [&](NodeId z) {
      if (z == id) return;
      if (std::find(cands.begin(), cands.end(), z) == cands.end()) {
        cands.push_back(z);
      }
    };
    for (NodeId f : nd.fanin) {
      consider(f);
      for (const auto& [z, sc] : partners_[static_cast<std::size_t>(f)]) {
        (void)sc;
        consider(z);
      }
    }

    bool bits[8];
    for (NodeId z : cands) {
      const double pz = p_[static_cast<std::size_t>(z)];
      if (pz <= opts_.eps || pz >= 1.0 - opts_.eps) continue;

      // P(y = 1, z = 1) by single-time enumeration with pairwise
      // corrections among fanins and between each fanin and z.
      PairJoint zc[8] = {PairJoint(0.5, 0.5, 1.0, opts_.eps), PairJoint(0.5, 0.5, 1.0, opts_.eps),
                         PairJoint(0.5, 0.5, 1.0, opts_.eps), PairJoint(0.5, 0.5, 1.0, opts_.eps),
                         PairJoint(0.5, 0.5, 1.0, opts_.eps), PairJoint(0.5, 0.5, 1.0, opts_.eps),
                         PairJoint(0.5, 0.5, 1.0, opts_.eps), PairJoint(0.5, 0.5, 1.0, opts_.eps)};
      int z_as_fanin = -1;
      for (int i = 0; i < k; ++i) {
        const NodeId f = nd.fanin[static_cast<std::size_t>(i)];
        if (f == z) {
          z_as_fanin = i;
        } else {
          zc[i] = PairJoint(p_[static_cast<std::size_t>(f)], pz, sc_of(f, z), opts_.eps);
        }
      }

      double p_y1_z1 = 0.0;
      const std::uint64_t n_assign = 1ULL << k;
      for (std::uint64_t a = 0; a < n_assign; ++a) {
        double w = 1.0;
        for (int i = 0; i < k && w != 0.0; ++i) {
          const bool b = (a >> i) & 1;
          bits[i] = b;
          const double pf = p_[static_cast<std::size_t>(nd.fanin[static_cast<std::size_t>(i)])];
          w *= b ? pf : 1.0 - pf;
        }
        if (w == 0.0) continue;
        if (!tt.eval(std::span<const bool>(bits, static_cast<std::size_t>(k)))) continue;
        for (std::size_t e = 0; e < pj.size(); ++e) {
          const auto [i, j] = pj_idx[e];
          w *= pj[e].corr[bits[i]][bits[j]];
        }
        if (z_as_fanin >= 0) {
          if (!bits[z_as_fanin]) continue;
          w /= std::max(opts_.eps, pz); // condition on z = 1 exactly
        } else {
          for (int i = 0; i < k; ++i) w *= zc[i].corr[bits[i]][1];
        }
        p_y1_z1 += w;
      }
      // The enumeration computed P(y=1 | corrections)·(P(z=1) factored
      // out), i.e. p_y1_z1 ≈ P(y=1, z=1)/P(z=1) when z is a fanin, and
      // ≈ P(y=1 | z=1) via pairwise composition otherwise. Either way:
      const double sc = std::clamp(p_y1_z1 / py, 0.0, 1.0 / std::max(py, pz));
      set_sc(id, z, sc);
    }
  }

  void retire(NodeId f) {
    auto& m = partners_[static_cast<std::size_t>(f)];
    for (const auto& [z, sc] : m) {
      (void)sc;
      partners_[static_cast<std::size_t>(z)].erase(f);
      --live_pairs_;
    }
    m.clear();
  }

  const Netlist& nl_;
  const InputModel& model_;
  const CorrelationOptions& opts_;
  CorrelationResult result_;
  std::vector<double> p_;
  std::vector<std::unordered_map<NodeId, double>> partners_;
  std::vector<int> uses_left_;
  std::size_t live_pairs_ = 0;
  bool groups_seeded_ = false;
};

} // namespace

std::vector<double> CorrelationResult::activities() const {
  std::vector<double> out(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) out[i] = activity_of(dist[i]);
  return out;
}

CorrelationResult estimate_correlation(const Netlist& nl,
                                       const InputModel& model,
                                       const CorrelationOptions& opts) {
  BNS_EXPECTS(model.num_inputs() == nl.num_inputs());
  if (nl.max_fanin() > 5) {
    // Bound the 4^k gate enumeration by folding wide gates into trees.
    const MappedNetlist m = decompose_wide_gates(nl, 4);
    CorrelationResult full = Propagator(m.netlist, model, opts).run();
    CorrelationResult r;
    r.seconds = full.seconds;
    r.max_live_pairs = full.max_live_pairs;
    r.dist.resize(static_cast<std::size_t>(nl.num_nodes()));
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      r.dist[static_cast<std::size_t>(id)] =
          full.dist[static_cast<std::size_t>(m.map[static_cast<std::size_t>(id)])];
    }
    return r;
  }
  return Propagator(nl, model, opts).run();
}

} // namespace bns
