#include "gen/circuits.h"

#include "netlist/bench_io.h"

namespace bns {

Netlist figure1_circuit() {
  Netlist nl("figure1");
  const NodeId x1 = nl.add_input("1");
  const NodeId x2 = nl.add_input("2");
  const NodeId x3 = nl.add_input("3");
  const NodeId x4 = nl.add_input("4");
  const NodeId x5 = nl.add_gate(GateType::Or, "5", {x1, x2});
  const NodeId x6 = nl.add_gate(GateType::Nand, "6", {x3, x4});
  const NodeId x7 = nl.add_gate(GateType::And, "7", {x5, x6});
  const NodeId x8 = nl.add_gate(GateType::Not, "8", {x4});
  const NodeId x9 = nl.add_gate(GateType::Nor, "9", {x7, x8});
  nl.mark_output(x9);
  return nl;
}

const char* const kC17Bench = R"(# c17 — ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

Netlist c17() { return read_bench_string(kC17Bench, "c17"); }

} // namespace bns
