#include "gen/benchmarks.h"

#include <stdexcept>

#include "gen/circuits.h"
#include "gen/generators.h"
#include "util/assert.h"

namespace bns {
namespace {

Netlist random_named(const std::string& name, int in, int out, int gates,
                     int depth, std::uint64_t seed) {
  RandomCircuitSpec spec;
  spec.num_inputs = in;
  spec.num_outputs = out;
  spec.num_gates = gates;
  spec.depth = depth;
  spec.seed = seed;
  return random_circuit(spec, name);
}

Netlist renamed(Netlist nl, const std::string& name) {
  nl.set_name(name);
  return nl;
}

} // namespace

const std::vector<BenchmarkInfo>& benchmark_suite() {
  static const std::vector<BenchmarkInfo> kSuite = {
      // name       family     origin        in   out  gates (published)
      {"c17", "iscas85", "exact", 5, 2, 6},
      {"c432", "iscas85", "random", 36, 7, 160},
      {"c499", "iscas85", "structural", 41, 32, 202},
      {"c880", "iscas85", "random", 60, 26, 383},
      {"c1355", "iscas85", "structural", 41, 32, 546},
      {"c1908", "iscas85", "structural", 33, 25, 880},
      {"c2670", "iscas85", "random", 233, 140, 1193},
      {"c3540", "iscas85", "random", 50, 22, 1669},
      {"c5315", "iscas85", "random", 178, 123, 2307},
      {"c6288", "iscas85", "structural", 32, 32, 2406},
      {"c7552", "iscas85", "random", 207, 108, 3512},
      {"alu4", "mcnc89", "structural", 27, 13, 160},
      {"malu4", "mcnc89", "structural", 43, 21, 260},
      {"max_flat", "mcnc89", "random", 32, 16, 450},
      {"voter", "mcnc89", "structural", 60, 12, 144},
      {"b9", "mcnc89", "random", 41, 21, 140},
      {"count", "mcnc89", "structural", 35, 35, 137},
      {"comp", "mcnc89", "structural", 32, 3, 125},
      {"pcler8", "mcnc89", "random", 27, 17, 96},
  };
  return kSuite;
}

std::vector<std::string> table2_names() {
  return {"c432",  "c499",  "c880",  "c1355", "c1908",
          "c2670", "c3540", "c5315", "c6288", "c7552"};
}

const BenchmarkInfo& benchmark_info(const std::string& name) {
  for (const BenchmarkInfo& b : benchmark_suite()) {
    if (b.name == name) return b;
  }
  throw std::invalid_argument("unknown benchmark circuit: " + name);
}

Netlist make_benchmark(const std::string& name) {
  // Seeds are fixed per circuit so every run of the harness sees the
  // same stand-in netlist.
  if (name == "c17") return c17();
  if (name == "c432") return random_named("c432", 36, 7, 160, 26, 0x432);
  if (name == "c499") return renamed(sec_corrector(32, 9), "c499");
  if (name == "c880") return random_named("c880", 60, 26, 383, 24, 0x880);
  if (name == "c1355") return renamed(expand_xor_to_nand(sec_corrector(32, 9)), "c1355");
  if (name == "c1908") return renamed(expand_xor_to_nand(sec_corrector(24, 9)), "c1908");
  if (name == "c2670") return random_named("c2670", 233, 140, 1193, 32, 0x2670);
  if (name == "c3540") return random_named("c3540", 50, 22, 1669, 47, 0x3540);
  if (name == "c5315") return random_named("c5315", 178, 123, 2307, 49, 0x5315);
  if (name == "c6288") return renamed(array_multiplier(16), "c6288");
  if (name == "c7552") return random_named("c7552", 207, 108, 3512, 43, 0x7552);
  if (name == "alu4") return renamed(alu(12), "alu4");
  if (name == "malu4") return renamed(alu(20), "malu4");
  if (name == "max_flat") return random_named("max_flat", 32, 16, 450, 14, 0xAF1A);
  if (name == "voter") return renamed(majority_voter(12, 5), "voter");
  if (name == "b9") return random_named("b9", 41, 21, 140, 10, 0xB9);
  if (name == "count") return renamed(incrementer_chain(35, 2), "count");
  if (name == "comp") return renamed(comparator(16), "comp");
  if (name == "pcler8") return random_named("pcler8", 27, 17, 96, 9, 0x9C1E);
  throw std::invalid_argument("unknown benchmark circuit: " + name);
}

} // namespace bns
