// Parameterized circuit generators.
//
// Two families:
//  * Structural generators for circuit classes whose architecture is
//    public and regular (adders, array multipliers, parity/Hamming
//    trees, comparators, ALUs, decoders, muxes). These reproduce the
//    real structure of benchmarks like c6288 (16x16 array multiplier)
//    and c499/c1355 (32-bit SEC circuit).
//  * A seeded layered random generator that hits target input/output/
//    gate counts with an ISCAS-like gate mix and reconvergent fanout,
//    used as stand-ins for benchmarks whose netlists are irregular
//    proprietary controllers (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace bns {

// --- arithmetic ------------------------------------------------------

// Ripple-carry adder: 2n+1 inputs (a, b, cin), n+1 outputs (sum, cout).
Netlist ripple_adder(int bits);

// Array multiplier over unsigned a[bits] x b[bits] (carry-save rows with
// ripple final stage) — the architecture of ISCAS-85 c6288 at bits=16.
Netlist array_multiplier(int bits);

// n-bit incrementer chain: `stages` cascaded +1 blocks (MCNC `count`-like
// combinational counter logic).
Netlist incrementer_chain(int bits, int stages);

// --- coding / trees --------------------------------------------------

// Balanced XOR parity tree over `width` inputs.
Netlist parity_tree(int width);

// Single-error-correct Hamming-style circuit: `data_bits` data +
// `parity_bits` received check bits in; syndrome decode; corrected data
// out. With data_bits=32, parity_bits=9... no: pass explicit counts.
// (c499/c1355 class at data_bits=32.)
Netlist sec_corrector(int data_bits, int parity_bits);

// Same function with every XOR2 expanded to 4 NAND2s (the c1355
// transformation of c499). Applied to any netlist.
Netlist expand_xor_to_nand(const Netlist& nl);

// --- selection / control ---------------------------------------------

// Magnitude + equality ripple comparator over two n-bit words
// (MCNC `comp` class): outputs gt, lt, eq.
Netlist comparator(int bits);

// 2^sel : 1 multiplexer tree.
Netlist mux_tree(int select_bits);

// sel -> 2^sel one-hot decoder with enable.
Netlist decoder(int select_bits);

// Majority voter over `ways` replicated `bits`-bit words (TMR-style,
// MCNC `voter` class).
Netlist majority_voter(int bits, int ways);

// Small ALU slice array: ops = {ADD, AND, OR, XOR} selected by 2 op
// bits; n-bit operands; n+1 outputs. (c880/alu4 class.)
Netlist alu(int bits);

// Carry-lookahead adder (two-level lookahead over 4-bit groups):
// structurally distinct from the ripple adder — shallow and wide.
Netlist carry_lookahead_adder(int bits);

// Logarithmic barrel shifter: data[2^stages] rotated left by the
// `stages`-bit shift amount.
Netlist barrel_shifter(int stages);

// Priority encoder: highest set bit of `width` requests, one-hot grant
// outputs plus a valid flag.
Netlist priority_encoder(int width);

// Binary-to-Gray and Gray-to-binary converter pair in one netlist
// (binary in, gray out and round-tripped binary out) — XOR chains with
// reconvergence.
Netlist gray_converter(int bits);

// --- random ------------------------------------------------------------

struct RandomCircuitSpec {
  int num_inputs = 16;
  int num_outputs = 8;
  int num_gates = 100;
  // Target logic depth; gates are spread over this many levels, so the
  // generated circuit is wide-and-shallow like real ISCAS controllers
  // rather than a deep sausage.
  int depth = 20;
  std::uint64_t seed = 1;
  // Fanin distribution weights for fanin 1..5 (fanin-1 gates are
  // BUF/NOT). Defaults follow a typical ISCAS-85 mix dominated by
  // 2-input gates with a tail of wide gates.
  double fanin_weights[5] = {0.14, 0.52, 0.18, 0.10, 0.06};
  // Geometric decay for how far back (in levels) a fanin reaches: a
  // fanin comes from level l-1 with probability `adjacency`, from l-2
  // with adjacency*(1-adjacency), etc. Smaller values create more
  // long-range reconvergence.
  double adjacency = 0.55;
};

// Levelized random circuit with the exact requested input/output/gate
// counts and approximately the requested depth. Every gate has at least
// one fanin on the immediately preceding level; outputs are drawn from
// sinks (newest first). Deterministic in `seed`.
Netlist random_circuit(const RandomCircuitSpec& spec, std::string name);

} // namespace bns
