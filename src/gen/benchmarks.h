// The 19-circuit evaluation suite of the paper (14 ISCAS-85 + 5 MCNC-89
// rows in Table 1; 10 ISCAS circuits in Table 2), materialized as:
//   * the real netlist where it is small enough to embed (c17),
//   * structurally faithful generators where the benchmark's
//     architecture is public and regular (c6288 = 16x16 array
//     multiplier; c499 = 32-bit SEC corrector; c1355 = the same circuit
//     with XORs expanded to NAND2s; comp = ripple comparator; count =
//     incrementer chain; voter = TMR majority; alu4/malu4 = ALU arrays),
//   * seeded layered random circuits with the published I/O and gate
//     counts for the irregular controller-style benchmarks.
// See DESIGN.md §2 for why this substitution preserves the behaviour the
// paper measures.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace bns {

struct BenchmarkInfo {
  std::string name;
  std::string family;  // "iscas85" or "mcnc89"
  std::string origin;  // "exact", "structural", or "random"
  int paper_inputs = 0; // published I/O/gate counts of the real netlist
  int paper_outputs = 0;
  int paper_gates = 0;
};

// All suite entries in Table-1 order.
const std::vector<BenchmarkInfo>& benchmark_suite();

// The circuits used in the paper's Table 2 comparison (10 ISCAS names).
std::vector<std::string> table2_names();

// Builds a suite circuit by name. Throws std::invalid_argument for
// unknown names.
Netlist make_benchmark(const std::string& name);

// Info lookup; throws std::invalid_argument for unknown names.
const BenchmarkInfo& benchmark_info(const std::string& name);

} // namespace bns
