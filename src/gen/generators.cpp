#include "gen/generators.h"

#include <algorithm>

#include "util/assert.h"
#include "util/rng.h"
#include "util/strings.h"

namespace bns {
namespace {

// Full adder over existing nodes; returns {sum, carry}.
struct FullAdderOut {
  NodeId sum;
  NodeId carry;
};

FullAdderOut full_adder(Netlist& nl, const std::string& prefix, NodeId a,
                        NodeId b, NodeId c) {
  const NodeId axb = nl.add_gate(GateType::Xor, prefix + "_axb", {a, b});
  const NodeId sum = nl.add_gate(GateType::Xor, prefix + "_s", {axb, c});
  const NodeId g1 = nl.add_gate(GateType::And, prefix + "_g1", {a, b});
  const NodeId g2 = nl.add_gate(GateType::And, prefix + "_g2", {axb, c});
  const NodeId carry = nl.add_gate(GateType::Or, prefix + "_co", {g1, g2});
  return {sum, carry};
}

// Half adder; returns {sum, carry}.
FullAdderOut half_adder(Netlist& nl, const std::string& prefix, NodeId a,
                        NodeId b) {
  const NodeId sum = nl.add_gate(GateType::Xor, prefix + "_s", {a, b});
  const NodeId carry = nl.add_gate(GateType::And, prefix + "_c", {a, b});
  return {sum, carry};
}

// Balanced tree of 2-input `type` gates over `leaves`.
NodeId balanced_tree(Netlist& nl, GateType type, const std::string& prefix,
                     std::vector<NodeId> leaves) {
  BNS_EXPECTS(!leaves.empty());
  int level = 0;
  while (leaves.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(nl.add_gate(
          type, strformat("%s_l%d_%zu", prefix.c_str(), level, i / 2),
          {leaves[i], leaves[i + 1]}));
    }
    if (leaves.size() % 2 == 1) next.push_back(leaves.back());
    leaves = std::move(next);
    ++level;
  }
  return leaves[0];
}

} // namespace

Netlist ripple_adder(int bits) {
  BNS_EXPECTS(bits >= 1);
  Netlist nl(strformat("radd%d", bits));
  std::vector<NodeId> a(static_cast<std::size_t>(bits));
  std::vector<NodeId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.add_input(strformat("a%d", i));
  for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.add_input(strformat("b%d", i));
  NodeId carry = nl.add_input("cin");
  for (int i = 0; i < bits; ++i) {
    const auto fa = full_adder(nl, strformat("fa%d", i),
                               a[static_cast<std::size_t>(i)],
                               b[static_cast<std::size_t>(i)], carry);
    nl.mark_output(fa.sum);
    carry = fa.carry;
  }
  nl.mark_output(carry);
  return nl;
}

Netlist array_multiplier(int bits) {
  BNS_EXPECTS(bits >= 2);
  Netlist nl(strformat("mult%dx%d", bits, bits));
  std::vector<NodeId> a(static_cast<std::size_t>(bits));
  std::vector<NodeId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.add_input(strformat("a%d", i));
  for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.add_input(strformat("b%d", i));

  // Row 0: partial products of b0.
  std::vector<NodeId> acc; // running sum, LSB first (grows each row)
  for (int i = 0; i < bits; ++i) {
    acc.push_back(nl.add_gate(GateType::And, strformat("pp0_%d", i),
                              {a[static_cast<std::size_t>(i)], b[0]}));
  }

  // Rows 1..bits-1: add the shifted partial-product row into acc, one
  // carry-propagate row per b bit (the classic array structure).
  for (int j = 1; j < bits; ++j) {
    std::vector<NodeId> pp(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) {
      pp[static_cast<std::size_t>(i)] =
          nl.add_gate(GateType::And, strformat("pp%d_%d", j, i),
                      {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(j)]});
    }
    // acc[j..] += pp; bit j+i pairs with pp[i].
    NodeId carry = kInvalidNode;
    for (int i = 0; i < bits; ++i) {
      const std::size_t pos = static_cast<std::size_t>(j + i);
      const std::string prefix = strformat("r%d_%d", j, i);
      if (pos < acc.size()) {
        if (carry == kInvalidNode) {
          const auto ha = half_adder(nl, prefix, acc[pos], pp[static_cast<std::size_t>(i)]);
          acc[pos] = ha.sum;
          carry = ha.carry;
        } else {
          const auto fa = full_adder(nl, prefix, acc[pos],
                                     pp[static_cast<std::size_t>(i)], carry);
          acc[pos] = fa.sum;
          carry = fa.carry;
        }
      } else {
        if (carry == kInvalidNode) {
          acc.push_back(pp[static_cast<std::size_t>(i)]);
        } else {
          const auto ha = half_adder(nl, prefix, pp[static_cast<std::size_t>(i)], carry);
          acc.push_back(ha.sum);
          carry = ha.carry;
        }
      }
    }
    if (carry != kInvalidNode) acc.push_back(carry);
  }

  for (NodeId s : acc) nl.mark_output(s);
  return nl;
}

Netlist incrementer_chain(int bits, int stages) {
  BNS_EXPECTS(bits >= 1 && stages >= 1);
  Netlist nl(strformat("inc%dx%d", bits, stages));
  std::vector<NodeId> x(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) x[static_cast<std::size_t>(i)] = nl.add_input(strformat("x%d", i));
  for (int s = 0; s < stages; ++s) {
    std::vector<NodeId> next(static_cast<std::size_t>(bits));
    next[0] = nl.add_gate(GateType::Not, strformat("s%d_b0", s), {x[0]});
    NodeId carry = x[0];
    for (int i = 1; i < bits; ++i) {
      next[static_cast<std::size_t>(i)] =
          nl.add_gate(GateType::Xor, strformat("s%d_b%d", s, i),
                      {x[static_cast<std::size_t>(i)], carry});
      if (i + 1 < bits) {
        carry = nl.add_gate(GateType::And, strformat("s%d_c%d", s, i),
                            {x[static_cast<std::size_t>(i)], carry});
      }
    }
    x = std::move(next);
  }
  for (NodeId o : x) nl.mark_output(o);
  return nl;
}

Netlist parity_tree(int width) {
  BNS_EXPECTS(width >= 2);
  Netlist nl(strformat("parity%d", width));
  std::vector<NodeId> in(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) in[static_cast<std::size_t>(i)] = nl.add_input(strformat("x%d", i));
  nl.mark_output(balanced_tree(nl, GateType::Xor, "p", in));
  return nl;
}

Netlist sec_corrector(int data_bits, int parity_bits) {
  BNS_EXPECTS(data_bits >= 2 && parity_bits >= 2);
  BNS_EXPECTS((1 << parity_bits) - 1 >= 1); // always true; keeps intent visible
  Netlist nl(strformat("sec%d_%d", data_bits, parity_bits));
  std::vector<NodeId> d(static_cast<std::size_t>(data_bits));
  std::vector<NodeId> p(static_cast<std::size_t>(parity_bits));
  for (int i = 0; i < data_bits; ++i) d[static_cast<std::size_t>(i)] = nl.add_input(strformat("d%d", i));
  for (int k = 0; k < parity_bits; ++k) p[static_cast<std::size_t>(k)] = nl.add_input(strformat("p%d", k));

  // Data bit i carries (nonzero) code word code(i); syndrome bit k is
  // the received check bit xored with the parity of the data bits whose
  // code has bit k set.
  auto code = [&](int i) {
    return (i % ((1 << parity_bits) - 1)) + 1;
  };

  std::vector<NodeId> syndrome(static_cast<std::size_t>(parity_bits));
  for (int k = 0; k < parity_bits; ++k) {
    std::vector<NodeId> leaves{p[static_cast<std::size_t>(k)]};
    for (int i = 0; i < data_bits; ++i) {
      if ((code(i) >> k) & 1) leaves.push_back(d[static_cast<std::size_t>(i)]);
    }
    syndrome[static_cast<std::size_t>(k)] =
        balanced_tree(nl, GateType::Xor, strformat("syn%d", k), leaves);
  }
  std::vector<NodeId> syn_n(static_cast<std::size_t>(parity_bits));
  for (int k = 0; k < parity_bits; ++k) {
    syn_n[static_cast<std::size_t>(k)] = nl.add_gate(
        GateType::Not, strformat("synn%d", k), {syndrome[static_cast<std::size_t>(k)]});
  }

  // err_i = 1 iff syndrome == code(i); corrected_i = d_i xor err_i.
  for (int i = 0; i < data_bits; ++i) {
    std::vector<NodeId> lits;
    for (int k = 0; k < parity_bits; ++k) {
      lits.push_back(((code(i) >> k) & 1) ? syndrome[static_cast<std::size_t>(k)]
                                          : syn_n[static_cast<std::size_t>(k)]);
    }
    const NodeId err = nl.add_gate(GateType::And, strformat("err%d", i), lits);
    const NodeId cor = nl.add_gate(GateType::Xor, strformat("cor%d", i),
                                   {d[static_cast<std::size_t>(i)], err});
    nl.mark_output(cor);
  }
  return nl;
}

Netlist expand_xor_to_nand(const Netlist& src) {
  Netlist nl(src.name() + "_nand");
  std::vector<NodeId> map(static_cast<std::size_t>(src.num_nodes()), kInvalidNode);

  auto xor2_nand = [&](const std::string& prefix, NodeId a, NodeId b) {
    const NodeId t1 = nl.add_gate(GateType::Nand, prefix + "_t1", {a, b});
    const NodeId t2 = nl.add_gate(GateType::Nand, prefix + "_t2", {a, t1});
    const NodeId t3 = nl.add_gate(GateType::Nand, prefix + "_t3", {b, t1});
    return nl.add_gate(GateType::Nand, prefix + "_o", {t2, t3});
  };

  for (NodeId id = 0; id < src.num_nodes(); ++id) {
    const Node& n = src.node(id);
    NodeId out = kInvalidNode;
    switch (n.type) {
      case GateType::Input:
        out = nl.add_input(n.name);
        break;
      case GateType::Const0:
      case GateType::Const1:
        out = nl.add_const(n.name, n.type == GateType::Const1);
        break;
      case GateType::Xor:
      case GateType::Xnor: {
        std::vector<NodeId> ops;
        for (NodeId f : n.fanin) ops.push_back(map[static_cast<std::size_t>(f)]);
        NodeId acc = ops[0];
        for (std::size_t i = 1; i < ops.size(); ++i) {
          acc = xor2_nand(strformat("%s_x%zu", n.name.c_str(), i), acc, ops[i]);
        }
        if (n.type == GateType::Xnor) {
          acc = nl.add_gate(GateType::Nand, n.name + "_inv", {acc, acc});
        }
        // Alias the final node under the original name via a BUF to keep
        // name lookup working... instead, rename: add BUF with original name.
        out = nl.add_gate(GateType::Buf, n.name, {acc});
        break;
      }
      case GateType::Lut: {
        std::vector<NodeId> fanin;
        for (NodeId f : n.fanin) fanin.push_back(map[static_cast<std::size_t>(f)]);
        out = nl.add_lut(n.name, std::move(fanin), *n.lut);
        break;
      }
      default: {
        std::vector<NodeId> fanin;
        for (NodeId f : n.fanin) fanin.push_back(map[static_cast<std::size_t>(f)]);
        out = nl.add_gate(n.type, n.name, std::move(fanin));
        break;
      }
    }
    map[static_cast<std::size_t>(id)] = out;
    if (src.is_output(id)) nl.mark_output(out);
  }
  return nl;
}

Netlist comparator(int bits) {
  BNS_EXPECTS(bits >= 1);
  Netlist nl(strformat("comp%d", bits));
  std::vector<NodeId> a(static_cast<std::size_t>(bits));
  std::vector<NodeId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.add_input(strformat("a%d", i));
  for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.add_input(strformat("b%d", i));

  NodeId gt = kInvalidNode;
  NodeId lt = kInvalidNode;
  NodeId eq = kInvalidNode;
  for (int i = bits - 1; i >= 0; --i) {
    const NodeId ai = a[static_cast<std::size_t>(i)];
    const NodeId bi = b[static_cast<std::size_t>(i)];
    const NodeId nb = nl.add_gate(GateType::Not, strformat("nb%d", i), {bi});
    const NodeId na = nl.add_gate(GateType::Not, strformat("na%d", i), {ai});
    const NodeId eq_i = nl.add_gate(GateType::Xnor, strformat("eq%d", i), {ai, bi});
    if (eq == kInvalidNode) {
      gt = nl.add_gate(GateType::And, strformat("gt%d", i), {ai, nb});
      lt = nl.add_gate(GateType::And, strformat("lt%d", i), {na, bi});
      eq = eq_i;
    } else {
      const NodeId g_here = nl.add_gate(GateType::And, strformat("gth%d", i), {eq, ai, nb});
      const NodeId l_here = nl.add_gate(GateType::And, strformat("lth%d", i), {eq, na, bi});
      gt = nl.add_gate(GateType::Or, strformat("gt%d", i), {gt, g_here});
      lt = nl.add_gate(GateType::Or, strformat("lt%d", i), {lt, l_here});
      eq = nl.add_gate(GateType::And, strformat("eqa%d", i), {eq, eq_i});
    }
  }
  nl.mark_output(gt);
  nl.mark_output(lt);
  nl.mark_output(eq);
  return nl;
}

Netlist mux_tree(int select_bits) {
  BNS_EXPECTS(select_bits >= 1 && select_bits <= 8);
  Netlist nl(strformat("mux%d", 1 << select_bits));
  const int n_data = 1 << select_bits;
  std::vector<NodeId> data(static_cast<std::size_t>(n_data));
  std::vector<NodeId> sel(static_cast<std::size_t>(select_bits));
  for (int i = 0; i < n_data; ++i) data[static_cast<std::size_t>(i)] = nl.add_input(strformat("d%d", i));
  for (int s = 0; s < select_bits; ++s) sel[static_cast<std::size_t>(s)] = nl.add_input(strformat("s%d", s));

  std::vector<NodeId> layer = data;
  for (int s = 0; s < select_bits; ++s) {
    const NodeId sn = nl.add_gate(GateType::Not, strformat("sn%d", s),
                                  {sel[static_cast<std::size_t>(s)]});
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const std::string prefix = strformat("m%d_%zu", s, i / 2);
      const NodeId t0 = nl.add_gate(GateType::And, prefix + "_a", {layer[i], sn});
      const NodeId t1 = nl.add_gate(GateType::And, prefix + "_b",
                                    {layer[i + 1], sel[static_cast<std::size_t>(s)]});
      next.push_back(nl.add_gate(GateType::Or, prefix + "_o", {t0, t1}));
    }
    layer = std::move(next);
  }
  nl.mark_output(layer[0]);
  return nl;
}

Netlist decoder(int select_bits) {
  BNS_EXPECTS(select_bits >= 1 && select_bits <= 6);
  Netlist nl(strformat("dec%d", select_bits));
  std::vector<NodeId> sel(static_cast<std::size_t>(select_bits));
  for (int s = 0; s < select_bits; ++s) sel[static_cast<std::size_t>(s)] = nl.add_input(strformat("s%d", s));
  const NodeId en = nl.add_input("en");
  std::vector<NodeId> sel_n(static_cast<std::size_t>(select_bits));
  for (int s = 0; s < select_bits; ++s) {
    sel_n[static_cast<std::size_t>(s)] =
        nl.add_gate(GateType::Not, strformat("sn%d", s), {sel[static_cast<std::size_t>(s)]});
  }
  for (int v = 0; v < (1 << select_bits); ++v) {
    std::vector<NodeId> lits{en};
    for (int s = 0; s < select_bits; ++s) {
      lits.push_back(((v >> s) & 1) ? sel[static_cast<std::size_t>(s)]
                                    : sel_n[static_cast<std::size_t>(s)]);
    }
    nl.mark_output(nl.add_gate(GateType::And, strformat("o%d", v), lits));
  }
  return nl;
}

Netlist majority_voter(int bits, int ways) {
  BNS_EXPECTS(bits >= 1);
  BNS_EXPECTS_MSG(ways == 3 || ways == 5, "supported voter widths: 3, 5");
  Netlist nl(strformat("voter%dx%d", bits, ways));
  std::vector<std::vector<NodeId>> in(static_cast<std::size_t>(ways));
  for (int w = 0; w < ways; ++w) {
    for (int i = 0; i < bits; ++i) {
      in[static_cast<std::size_t>(w)].push_back(nl.add_input(strformat("w%d_b%d", w, i)));
    }
  }
  for (int i = 0; i < bits; ++i) {
    std::vector<NodeId> terms;
    const int majority = ways / 2 + 1;
    // Sum of products over all `majority`-subsets of the ways.
    std::vector<int> idx(static_cast<std::size_t>(majority));
    for (int k = 0; k < majority; ++k) idx[static_cast<std::size_t>(k)] = k;
    for (;;) {
      std::vector<NodeId> ands;
      for (int k : idx) ands.push_back(in[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)]);
      terms.push_back(nl.add_gate(GateType::And,
                                  strformat("b%d_t%zu", i, terms.size()), ands));
      // Next combination.
      int k = majority - 1;
      while (k >= 0 && idx[static_cast<std::size_t>(k)] == ways - majority + k) --k;
      if (k < 0) break;
      ++idx[static_cast<std::size_t>(k)];
      for (int j = k + 1; j < majority; ++j) {
        idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
      }
    }
    nl.mark_output(nl.add_gate(GateType::Or, strformat("maj%d", i), terms));
  }
  return nl;
}

Netlist alu(int bits) {
  BNS_EXPECTS(bits >= 1);
  Netlist nl(strformat("alu%d", bits));
  std::vector<NodeId> a(static_cast<std::size_t>(bits));
  std::vector<NodeId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.add_input(strformat("a%d", i));
  for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.add_input(strformat("b%d", i));
  const NodeId op0 = nl.add_input("op0");
  const NodeId op1 = nl.add_input("op1");
  const NodeId cin = nl.add_input("cin");

  const NodeId op0n = nl.add_gate(GateType::Not, "op0n", {op0});
  const NodeId op1n = nl.add_gate(GateType::Not, "op1n", {op1});
  const NodeId d_add = nl.add_gate(GateType::And, "d_add", {op0n, op1n});
  const NodeId d_and = nl.add_gate(GateType::And, "d_and", {op0, op1n});
  const NodeId d_or = nl.add_gate(GateType::And, "d_or", {op0n, op1});
  const NodeId d_xor = nl.add_gate(GateType::And, "d_xor", {op0, op1});

  NodeId carry = cin;
  for (int i = 0; i < bits; ++i) {
    const NodeId ai = a[static_cast<std::size_t>(i)];
    const NodeId bi = b[static_cast<std::size_t>(i)];
    const auto fa = full_adder(nl, strformat("add%d", i), ai, bi, carry);
    carry = fa.carry;
    const NodeId and_i = nl.add_gate(GateType::And, strformat("and%d", i), {ai, bi});
    const NodeId or_i = nl.add_gate(GateType::Or, strformat("or%d", i), {ai, bi});
    const NodeId xor_i = nl.add_gate(GateType::Xor, strformat("xor%d", i), {ai, bi});
    const NodeId m0 = nl.add_gate(GateType::And, strformat("sel_add%d", i), {d_add, fa.sum});
    const NodeId m1 = nl.add_gate(GateType::And, strformat("sel_and%d", i), {d_and, and_i});
    const NodeId m2 = nl.add_gate(GateType::And, strformat("sel_or%d", i), {d_or, or_i});
    const NodeId m3 = nl.add_gate(GateType::And, strformat("sel_xor%d", i), {d_xor, xor_i});
    nl.mark_output(nl.add_gate(GateType::Or, strformat("out%d", i), {m0, m1, m2, m3}));
  }
  nl.mark_output(nl.add_gate(GateType::And, "cout", {d_add, carry}));
  return nl;
}

Netlist carry_lookahead_adder(int bits) {
  BNS_EXPECTS(bits >= 1);
  Netlist nl(strformat("cla%d", bits));
  std::vector<NodeId> a(static_cast<std::size_t>(bits));
  std::vector<NodeId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.add_input(strformat("a%d", i));
  for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.add_input(strformat("b%d", i));
  const NodeId cin = nl.add_input("cin");

  // Generate/propagate per bit, then the carries by explicit lookahead:
  //   c[i+1] = g[i] | p[i]g[i-1] | ... | p[i]..p[0]c0.
  std::vector<NodeId> g(static_cast<std::size_t>(bits));
  std::vector<NodeId> p(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    g[static_cast<std::size_t>(i)] =
        nl.add_gate(GateType::And, strformat("g%d", i),
                    {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]});
    p[static_cast<std::size_t>(i)] =
        nl.add_gate(GateType::Xor, strformat("p%d", i),
                    {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]});
  }
  std::vector<NodeId> carry(static_cast<std::size_t>(bits) + 1);
  carry[0] = cin;
  for (int i = 0; i < bits; ++i) {
    // Terms: g[i], and for each j < i: p[i]&..&p[j+1]&g[j], plus
    // p[i]&..&p[0]&cin.
    std::vector<NodeId> terms{g[static_cast<std::size_t>(i)]};
    for (int j = i - 1; j >= -1; --j) {
      std::vector<NodeId> lits;
      for (int k = i; k > j; --k) lits.push_back(p[static_cast<std::size_t>(k)]);
      lits.push_back(j >= 0 ? g[static_cast<std::size_t>(j)] : cin);
      terms.push_back(nl.add_gate(GateType::And,
                                  strformat("t%d_%d", i, j + 1), lits));
    }
    carry[static_cast<std::size_t>(i) + 1] =
        terms.size() == 1
            ? terms[0]
            : nl.add_gate(GateType::Or, strformat("c%d", i + 1), terms);
    nl.mark_output(nl.add_gate(GateType::Xor, strformat("s%d", i),
                               {p[static_cast<std::size_t>(i)],
                                carry[static_cast<std::size_t>(i)]}));
  }
  nl.mark_output(nl.add_gate(GateType::Buf, "cout",
                             {carry[static_cast<std::size_t>(bits)]}));
  return nl;
}

Netlist barrel_shifter(int stages) {
  BNS_EXPECTS(stages >= 1 && stages <= 5);
  const int width = 1 << stages;
  Netlist nl(strformat("bshift%d", width));
  std::vector<NodeId> data(static_cast<std::size_t>(width));
  std::vector<NodeId> amt(static_cast<std::size_t>(stages));
  for (int i = 0; i < width; ++i) data[static_cast<std::size_t>(i)] = nl.add_input(strformat("d%d", i));
  for (int s = 0; s < stages; ++s) amt[static_cast<std::size_t>(s)] = nl.add_input(strformat("s%d", s));

  std::vector<NodeId> cur = data;
  for (int s = 0; s < stages; ++s) {
    const int shift = 1 << s;
    const NodeId sel = amt[static_cast<std::size_t>(s)];
    const NodeId nsel = nl.add_gate(GateType::Not, strformat("ns%d", s), {sel});
    std::vector<NodeId> next(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      // Rotate left by `shift` when sel: out[i] = sel ? in[(i - shift)
      // mod width] : in[i].
      const int src = ((i - shift) % width + width) % width;
      const NodeId keep = nl.add_gate(GateType::And, strformat("k%d_%d", s, i),
                                      {cur[static_cast<std::size_t>(i)], nsel});
      const NodeId rot = nl.add_gate(GateType::And, strformat("r%d_%d", s, i),
                                     {cur[static_cast<std::size_t>(src)], sel});
      next[static_cast<std::size_t>(i)] =
          nl.add_gate(GateType::Or, strformat("m%d_%d", s, i), {keep, rot});
    }
    cur = std::move(next);
  }
  for (NodeId o : cur) nl.mark_output(o);
  return nl;
}

Netlist priority_encoder(int width) {
  BNS_EXPECTS(width >= 2);
  Netlist nl(strformat("prienc%d", width));
  std::vector<NodeId> req(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) req[static_cast<std::size_t>(i)] = nl.add_input(strformat("r%d", i));

  // grant[i] = r[i] & !r[i+1] & ... & !r[width-1] (highest index wins).
  std::vector<NodeId> notr(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    notr[static_cast<std::size_t>(i)] =
        nl.add_gate(GateType::Not, strformat("nr%d", i), {req[static_cast<std::size_t>(i)]});
  }
  for (int i = 0; i < width; ++i) {
    std::vector<NodeId> lits{req[static_cast<std::size_t>(i)]};
    for (int j = i + 1; j < width; ++j) lits.push_back(notr[static_cast<std::size_t>(j)]);
    nl.mark_output(lits.size() == 1
                       ? nl.add_gate(GateType::Buf, strformat("gr%d", i), lits)
                       : nl.add_gate(GateType::And, strformat("gr%d", i), lits));
  }
  nl.mark_output(nl.add_gate(GateType::Or, "valid", req));
  return nl;
}

Netlist gray_converter(int bits) {
  BNS_EXPECTS(bits >= 2);
  Netlist nl(strformat("gray%d", bits));
  std::vector<NodeId> bin(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) bin[static_cast<std::size_t>(i)] = nl.add_input(strformat("b%d", i));

  // Binary -> Gray: gray[i] = b[i] ^ b[i+1] (MSB passes through).
  std::vector<NodeId> gray(static_cast<std::size_t>(bits));
  gray[static_cast<std::size_t>(bits) - 1] = nl.add_gate(
      GateType::Buf, strformat("gy%d", bits - 1),
      {bin[static_cast<std::size_t>(bits) - 1]});
  for (int i = bits - 2; i >= 0; --i) {
    gray[static_cast<std::size_t>(i)] = nl.add_gate(
        GateType::Xor, strformat("gy%d", i),
        {bin[static_cast<std::size_t>(i)], bin[static_cast<std::size_t>(i) + 1]});
  }
  for (NodeId gnode : gray) nl.mark_output(gnode);

  // Gray -> binary round trip: rb[i] = gray[i] ^ rb[i+1].
  NodeId acc = gray[static_cast<std::size_t>(bits) - 1];
  std::vector<NodeId> round(static_cast<std::size_t>(bits));
  round[static_cast<std::size_t>(bits) - 1] =
      nl.add_gate(GateType::Buf, strformat("rb%d", bits - 1), {acc});
  for (int i = bits - 2; i >= 0; --i) {
    acc = nl.add_gate(GateType::Xor, strformat("rb%d", i),
                      {gray[static_cast<std::size_t>(i)], acc});
    round[static_cast<std::size_t>(i)] = acc;
  }
  for (NodeId r : round) nl.mark_output(r);
  return nl;
}

Netlist random_circuit(const RandomCircuitSpec& spec, std::string name) {
  BNS_EXPECTS(spec.num_inputs >= 1);
  BNS_EXPECTS(spec.num_outputs >= 1);
  BNS_EXPECTS(spec.num_gates >= spec.num_outputs);
  BNS_EXPECTS(spec.depth >= 1);
  Rng rng(spec.seed);
  Netlist nl(std::move(name));

  // Level 0: the primary inputs.
  std::vector<std::vector<NodeId>> level(1);
  for (int i = 0; i < spec.num_inputs; ++i) {
    level[0].push_back(nl.add_input(strformat("i%d", i)));
  }

  const int depth = std::min(spec.depth, spec.num_gates);
  const double w1[] = {0.2, 0.8}; // BUF : NOT
  const double wtype[] = {0.30, 0.22, 0.20, 0.20, 0.05, 0.03};
  const GateType types[] = {GateType::Nand, GateType::Nor, GateType::And,
                            GateType::Or,   GateType::Xor, GateType::Xnor};

  // Draws a source from a level below `l`, geometrically biased toward
  // the immediately preceding one.
  auto pick_from_below = [&](int l) -> NodeId {
    int src = l - 1;
    while (src > 0 && !rng.bernoulli(spec.adjacency)) --src;
    const auto& lv = level[static_cast<std::size_t>(src)];
    return lv[static_cast<std::size_t>(rng.below(lv.size()))];
  };

  // Independence-approximated signal probability per node, used to keep
  // the generated logic *informative*: deep random NAND/NOR cascades
  // otherwise drift every line to a near-constant 0/1, which no designed
  // circuit exhibits.
  std::vector<double> prob(static_cast<std::size_t>(spec.num_inputs), 0.5);

  auto type_output_prob = [](GateType t, std::span<const double> ps) {
    double and_p = 1.0;
    double or_q = 1.0;
    double xor_p = 0.0;
    for (double p : ps) {
      and_p *= p;
      or_q *= 1.0 - p;
      xor_p = xor_p * (1.0 - p) + (1.0 - xor_p) * p;
    }
    switch (t) {
      case GateType::And: return and_p;
      case GateType::Nand: return 1.0 - and_p;
      case GateType::Or: return 1.0 - or_q;
      case GateType::Nor: return or_q;
      case GateType::Xor: return xor_p;
      case GateType::Xnor: return 1.0 - xor_p;
      default: return ps.empty() ? 0.5 : ps[0];
    }
  };

  int made = 0;
  int unconsumed_input = 0;
  for (int l = 1; l <= depth; ++l) {
    // Spread the remaining gates evenly over the remaining levels.
    const int remaining_levels = depth - l + 1;
    const int width = std::max(
        1, (spec.num_gates - made + remaining_levels - 1) / remaining_levels);
    level.emplace_back();
    for (int gi = 0; gi < width && made < spec.num_gates; ++gi, ++made) {
      int fanin = 1 + rng.weighted(spec.fanin_weights, 5);

      std::vector<NodeId> fin;
      // Enforce the level structure: first fanin comes from level l-1
      // (unless inputs remain unconsumed and we are at level 1).
      if (l == 1 && unconsumed_input < spec.num_inputs) {
        fin.push_back(level[0][static_cast<std::size_t>(unconsumed_input++)]);
      } else {
        const auto& prev = level[static_cast<std::size_t>(l - 1)];
        fin.push_back(prev[static_cast<std::size_t>(rng.below(prev.size()))]);
      }
      // Feed not-yet-consumed inputs as secondary fanins so wide-input
      // circuits (c2670-class) consume all their PIs without inflating
      // the gate count.
      if (static_cast<int>(fin.size()) < fanin &&
          unconsumed_input < spec.num_inputs) {
        fin.push_back(level[0][static_cast<std::size_t>(unconsumed_input++)]);
      }
      int attempts = 0;
      while (static_cast<int>(fin.size()) < fanin && attempts < 64) {
        const NodeId s = pick_from_below(l);
        if (std::find(fin.begin(), fin.end(), s) == fin.end()) fin.push_back(s);
        ++attempts;
      }

      std::vector<double> fps;
      for (NodeId f : fin) fps.push_back(prob[static_cast<std::size_t>(f)]);

      GateType type;
      double out_p;
      if (fin.size() == 1) {
        type = rng.weighted(w1, 2) == 0 ? GateType::Buf : GateType::Not;
        out_p = type == GateType::Buf ? fps[0] : 1.0 - fps[0];
      } else {
        // Draw from the realistic mix but redraw (a few times) when the
        // output would be nearly constant.
        type = types[rng.weighted(wtype, 6)];
        out_p = type_output_prob(type, fps);
        // Redraw from the same mix while the line would be nearly
        // constant; the first acceptable draw wins so the overall gate
        // mix stays realistic instead of drifting toward XOR.
        for (int redraw = 0; redraw < 4 && (out_p < 0.1 || out_p > 0.9);
             ++redraw) {
          const GateType cand = types[rng.weighted(wtype, 6)];
          const double cand_p = type_output_prob(cand, fps);
          if (cand_p >= 0.1 && cand_p <= 0.9) {
            type = cand;
            out_p = cand_p;
            break;
          }
          if (std::abs(cand_p - 0.5) < std::abs(out_p - 0.5)) {
            type = cand;
            out_p = cand_p;
          }
        }
      }
      prob.push_back(out_p);
      level.back().push_back(
          nl.add_gate(type, strformat("g%d", made), std::move(fin)));
    }
    if (level.back().empty()) level.pop_back();
  }
  // Any inputs not consumed at level 1 get a consumer now (a NOT at the
  // end keeps them from dangling).
  while (unconsumed_input < spec.num_inputs) {
    const NodeId in = level[0][static_cast<std::size_t>(unconsumed_input)];
    // Only if genuinely unused:
    bool used = false;
    for (NodeId id = 0; id < nl.num_nodes() && !used; ++id) {
      for (NodeId f : nl.node(id).fanin) {
        if (f == in) {
          used = true;
          break;
        }
      }
    }
    if (!used) {
      level.back().push_back(
          nl.add_gate(GateType::Not, strformat("gi%d", unconsumed_input), {in}));
      prob.push_back(1.0 - prob[static_cast<std::size_t>(in)]);
    }
    ++unconsumed_input;
  }

  // Outputs: prefer sinks (fanout-0 gates), newest first; top up with
  // the newest non-sink gates if the circuit converged too much.
  const auto fo = nl.fanout_counts();
  std::vector<NodeId> sinks;
  for (NodeId id = nl.num_nodes() - 1; id >= 0; --id) {
    if (nl.node(id).type != GateType::Input && fo[static_cast<std::size_t>(id)] == 0) {
      sinks.push_back(id);
    }
  }
  int marked = 0;
  for (NodeId id : sinks) {
    if (marked >= spec.num_outputs) break;
    nl.mark_output(id);
    ++marked;
  }
  for (NodeId id = nl.num_nodes() - 1; id >= 0 && marked < spec.num_outputs; --id) {
    if (nl.node(id).type == GateType::Input || nl.is_output(id)) continue;
    nl.mark_output(id);
    ++marked;
  }
  return nl;
}

} // namespace bns
