// Hand-built reference circuits: the paper's running example (Figure 1)
// and the one ISCAS-85 circuit small enough to embed verbatim (c17).
#pragma once

#include "netlist/netlist.h"

namespace bns {

// The 5-gate, 9-line circuit of Figure 1. Line numbering matches the
// paper: lines 1–4 are primary inputs; line 5 = OR(1,2) (the gate type
// the paper names explicitly); the remaining gate types are chosen
// representatively — the structural results (Figures 2–4) depend only
// on connectivity. Node ids are line number - 1.
Netlist figure1_circuit();

// ISCAS-85 c17: 5 inputs, 2 outputs, 6 NAND2 gates (the real netlist).
Netlist c17();

// The .bench text of c17, for parser round-trip tests.
extern const char* const kC17Bench;

} // namespace bns
