#include "lidag/lidag.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "lidag/gate_cpt.h"
#include "util/assert.h"
#include "util/strings.h"

namespace bns {
namespace {

// CPTs are identical for every gate of the same type and width, so we
// build each once per (type-or-table, width, scope-shape). The scope
// shape matters only through the *rank* of the output variable among the
// sorted scope; we key on that.
struct CptCache {
  std::unordered_map<std::string, Factor> by_key;

  const Factor* find(const std::string& key) const {
    const auto it = by_key.find(key);
    return it == by_key.end() ? nullptr : &it->second;
  }
  const Factor& put(std::string key, Factor f) {
    return by_key.emplace(std::move(key), std::move(f)).first->second;
  }
};

class Builder {
 public:
  Builder(const Netlist& nl, NodeId context_begin, NodeId begin, NodeId end,
          const InputModel& model, const LidagOptions& opts)
      : nl_(nl), context_begin_(context_begin), begin_(begin), end_(end),
        model_(model), opts_(opts) {
    BNS_EXPECTS(context_begin >= 0 && context_begin <= begin && begin <= end &&
                end <= nl.num_nodes());
    BNS_EXPECTS(opts.max_fanin >= 2);
    out_.var_of_node.assign(static_cast<std::size_t>(nl.num_nodes()), -1);
    // Map PI node -> index into the input model.
    pi_index_.assign(static_cast<std::size_t>(nl.num_nodes()), -1);
    for (int i = 0; i < nl.num_inputs(); ++i) {
      pi_index_[static_cast<std::size_t>(nl.inputs()[static_cast<std::size_t>(i)])] = i;
    }
  }

  LidagBn run() {
    // Context pruning: only nodes in [context_begin_, begin_) that feed
    // the segment (transitively, within the window) are rebuilt.
    if (context_begin_ < begin_) {
      std::vector<bool> needed(static_cast<std::size_t>(begin_), false);
      std::vector<NodeId> work;
      auto want = [&](NodeId f) {
        if (f >= context_begin_ && f < begin_ &&
            !needed[static_cast<std::size_t>(f)]) {
          needed[static_cast<std::size_t>(f)] = true;
          work.push_back(f);
        }
      };
      for (NodeId id = begin_; id < end_; ++id) {
        for (NodeId f : nl_.node(id).fanin) want(f);
      }
      while (!work.empty()) {
        const NodeId id = work.back();
        work.pop_back();
        for (NodeId f : nl_.node(id).fanin) want(f);
      }
      for (NodeId id = context_begin_; id < begin_; ++id) {
        if (needed[static_cast<std::size_t>(id)]) add_node(id);
      }
    }
    for (NodeId id = begin_; id < end_; ++id) add_node(id);
    return std::move(out_);
  }

 private:
  VarId new_var(const std::string& name) {
    return out_.bn.add_variable(name, 4);
  }

  // Returns the BN variable of line `id`, creating a root for it if it
  // is not (yet) represented — used for fanins outside [begin_, end_).
  VarId var_for_fanin(NodeId id) {
    VarId v = out_.var_of_node[static_cast<std::size_t>(id)];
    if (v >= 0) return v;
    BNS_ASSERT_MSG(id < begin_, "fanin inside range must already be built");
    v = new_var(nl_.node(id).name + "@boundary");
    out_.var_of_node[static_cast<std::size_t>(id)] = v;
    LidagRoot r;
    r.var = v;
    r.kind = RootKind::Boundary;
    r.node = id;
    out_.roots.push_back(r);
    placeholder_prior(v);
    return v;
  }

  void placeholder_prior(VarId v) {
    out_.bn.set_cpt(v, {}, transition_prior(v, {0.25, 0.25, 0.25, 0.25}));
  }

  VarId group_source_var(int group) {
    const auto it = group_var_.find(group);
    if (it != group_var_.end()) return it->second;
    const VarId v = new_var(strformat("group%d@source", group));
    group_var_.emplace(group, v);
    LidagRoot r;
    r.var = v;
    r.kind = RootKind::GroupSource;
    r.group = group;
    out_.roots.push_back(r);
    placeholder_prior(v);
    return v;
  }

  void add_node(NodeId id) {
    const Node& n = nl_.node(id);
    const VarId v = new_var(n.name);
    out_.var_of_node[static_cast<std::size_t>(id)] = v;
    if (id >= begin_) out_.defined_nodes.push_back(id);

    switch (n.type) {
      case GateType::Input: {
        const int pi = pi_index_[static_cast<std::size_t>(id)];
        BNS_ASSERT(pi >= 0);
        const InputSpec& spec = model_.spec(pi);
        LidagRoot r;
        r.var = v;
        r.node = id;
        r.input_index = pi;
        if (opts_.model_input_groups && spec.group >= 0) {
          // Noisy copy of a hidden source; CPT quantified later.
          const VarId src = group_source_var(spec.group);
          out_.bn.set_cpt(v, {src}, noisy_copy_cpt(src, v, spec.flip));
          r.kind = RootKind::PrimaryInput; // quantified via grouped_inputs
          out_.grouped_inputs.push_back(r);
        } else {
          r.kind = RootKind::PrimaryInput;
          out_.roots.push_back(r);
          placeholder_prior(v);
        }
        return;
      }
      case GateType::Const0:
      case GateType::Const1: {
        LidagRoot r;
        r.var = v;
        r.kind = RootKind::Constant;
        r.node = id;
        out_.roots.push_back(r);
        const bool one = n.type == GateType::Const1;
        out_.bn.set_cpt(
            v, {},
            transition_prior(v, one ? std::array<double, 4>{0, 0, 0, 1}
                                    : std::array<double, 4>{1, 0, 0, 0}));
        return;
      }
      case GateType::Lut: {
        if (n.lut->num_inputs() > opts_.max_lut_fanin) {
          throw std::invalid_argument(
              strformat("LUT '%s' has %d inputs, exceeding max_lut_fanin=%d",
                        n.name.c_str(), n.lut->num_inputs(),
                        opts_.max_lut_fanin));
        }
        std::vector<VarId> in_vars;
        in_vars.reserve(n.fanin.size());
        for (NodeId f : n.fanin) in_vars.push_back(var_for_fanin(f));
        set_table_cpt(v, *n.lut, in_vars, "lut:" + n.lut->to_string());
        return;
      }
      default:
        add_gate(id, n, v);
        return;
    }
  }

  void add_gate(NodeId id, const Node& n, VarId v) {
    std::vector<VarId> in_vars;
    in_vars.reserve(n.fanin.size());
    for (NodeId f : n.fanin) in_vars.push_back(var_for_fanin(f));

    const int k = static_cast<int>(in_vars.size());
    if (k <= opts_.max_fanin) {
      set_gate_cpt(v, n.type, in_vars);
      return;
    }

    // Parent divorcing: rounds of max_fanin-ary core gates over
    // auxiliary variables, with the original (possibly inverting) gate
    // type applied at the root so that line `id` keeps its semantics.
    const GateType core = uninverted_core(n.type);
    BNS_ASSERT_MSG(is_associative(core),
                   "wide gate must have an associative core");
    std::vector<VarId> layer = in_vars;
    int aux_count = 0;
    while (static_cast<int>(layer.size()) > opts_.max_fanin) {
      std::vector<VarId> next;
      for (std::size_t i = 0; i < layer.size(); i += static_cast<std::size_t>(opts_.max_fanin)) {
        const std::size_t end =
            std::min(layer.size(), i + static_cast<std::size_t>(opts_.max_fanin));
        if (end - i == 1) {
          next.push_back(layer[i]); // odd remainder passes through
          continue;
        }
        const VarId aux = new_var(
            strformat("%s#d%d", nl_.node(id).name.c_str(), aux_count++));
        ++out_.num_aux;
        set_gate_cpt(aux, core,
                     std::vector<VarId>(layer.begin() + static_cast<std::ptrdiff_t>(i),
                                        layer.begin() + static_cast<std::ptrdiff_t>(end)));
        next.push_back(aux);
      }
      layer = std::move(next);
    }
    set_gate_cpt(v, n.type, layer);
  }

  void set_gate_cpt(VarId v, GateType type, const std::vector<VarId>& in_vars) {
    set_table_cpt(v, TruthTable::of_gate(type, static_cast<int>(in_vars.size())),
                  in_vars, std::string(gate_type_name(type)));
  }

  void set_table_cpt(VarId v, const TruthTable& tt,
                     const std::vector<VarId>& in_vars,
                     const std::string& fn_key) {
    // The cached factor depends on the *relative order* of the scope
    // variables, not their identities. Because variables are created in
    // ascending id order and the output is created before any auxiliary
    // variable but after its fanins... the output may be lower than a
    // boundary fanin's id, so the rank of the output among the sorted
    // scope is part of the key, as is the fanin permutation.
    std::string key = fn_key;
    key += '/';
    std::vector<VarId> sorted(in_vars);
    sorted.push_back(v);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (VarId u : in_vars) {
      key += std::to_string(std::lower_bound(sorted.begin(), sorted.end(), u) -
                            sorted.begin());
      key += ',';
    }
    key += '|';
    key += std::to_string(std::lower_bound(sorted.begin(), sorted.end(), v) -
                          sorted.begin());

    const Factor* cached = cache_.find(key);
    Factor cpt = cached != nullptr
                     ? *cached
                     : cache_.put(key, transition_cpt(tt, in_vars, v));
    // Re-label the cached factor's scope with the actual variable ids:
    // same shape, same entries, different names.
    if (cached != nullptr) {
      Factor fresh(sorted, std::vector<int>(sorted.size(), 4));
      BNS_ASSERT(fresh.size() == cpt.size());
      std::copy(cpt.values().begin(), cpt.values().end(),
                fresh.values().begin());
      cpt = std::move(fresh);
    }
    // Parents are the de-duplicated fanins (a gate may list a line twice).
    std::vector<VarId> parents(sorted);
    parents.erase(std::remove(parents.begin(), parents.end(), v), parents.end());
    out_.bn.set_cpt(v, std::move(parents), std::move(cpt));
  }

  const Netlist& nl_;
  NodeId context_begin_;
  NodeId begin_;
  NodeId end_;
  const InputModel& model_;
  const LidagOptions& opts_;
  LidagBn out_;
  std::vector<int> pi_index_;
  std::unordered_map<int, VarId> group_var_;
  CptCache cache_;
};

} // namespace

LidagBn build_lidag(const Netlist& nl, NodeId context_begin, NodeId begin,
                    NodeId end, const InputModel& model,
                    const LidagOptions& opts) {
  BNS_EXPECTS(model.num_inputs() == nl.num_inputs());
  return Builder(nl, context_begin, begin, end, model, opts).run();
}

LidagBn build_lidag(const Netlist& nl, const InputModel& model,
                    const LidagOptions& opts) {
  return build_lidag(nl, 0, 0, nl.num_nodes(), model, opts);
}

void link_boundary_roots(LidagBn& lb,
                         std::span<const std::pair<NodeId, NodeId>> links) {
  for (const auto& [child, parent] : links) {
    BNS_EXPECTS(parent < child);
    const VarId cv = lb.var_of_node[static_cast<std::size_t>(child)];
    const VarId pv = lb.var_of_node[static_cast<std::size_t>(parent)];
    BNS_EXPECTS(cv >= 0 && pv >= 0);
    std::vector<VarId> scope{std::min(pv, cv), std::max(pv, cv)};
    Factor placeholder(scope, {4, 4});
    std::fill(placeholder.values().begin(), placeholder.values().end(), 0.25);
    lb.bn.set_cpt(cv, {pv}, std::move(placeholder));
    lb.boundary_links.emplace_back(child, parent);
  }
}

namespace {

// Installs `cpt` for `var`, except in diff mode (`changed` non-null)
// where a candidate bitwise-identical to the installed CPT is dropped
// and vars actually written are recorded. Scopes never change between
// quantifications of the same LidagBn, so value equality is the full
// equality.
void install_cpt(LidagBn& lb, VarId var, std::vector<VarId> parents,
                 Factor cpt, std::vector<VarId>* changed) {
  if (changed != nullptr) {
    const Factor& cur = lb.bn.cpt(var);
    const auto a = cur.values();
    const auto b = cpt.values();
    if (a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin())) {
      return;
    }
    changed->push_back(var);
  }
  lb.bn.set_cpt(var, std::move(parents), std::move(cpt));
}

} // namespace

static void quantify_impl(LidagBn& lb, const InputModel& model,
                          std::span<const std::array<double, 4>> boundary_dist,
                          const BoundaryJointFn& pair_joint,
                          const LidagOptions& opts,
                          std::vector<VarId>* changed) {
  // Boundary roots in line order, to rebuild the chain conditionals.
  std::vector<const LidagRoot*> chain;
  for (const LidagRoot& r : lb.roots) {
    switch (r.kind) {
      case RootKind::PrimaryInput: {
        const InputSpec& spec = model.spec(r.input_index);
        // Ungrouped PI (grouped ones live in grouped_inputs).
        install_cpt(lb, r.var, {},
                    transition_prior(
                        r.var, transition_distribution(spec.p, spec.rho)),
                    changed);
        break;
      }
      case RootKind::Boundary:
        BNS_EXPECTS(static_cast<std::size_t>(r.node) < boundary_dist.size());
        chain.push_back(&r);
        break;
      case RootKind::Constant:
        break; // fixed at build time
      case RootKind::GroupSource:
        install_cpt(lb, r.var, {},
                    transition_prior(r.var,
                                     model.group_transition_dist(r.group)),
                    changed);
        break;
    }
  }

  // child line -> parent line for linked boundary roots.
  std::vector<std::pair<NodeId, NodeId>> links = lb.boundary_links;
  std::sort(links.begin(), links.end());
  auto parent_of = [&](NodeId child) -> NodeId {
    const auto it = std::lower_bound(
        links.begin(), links.end(), std::make_pair(child, NodeId{-1}));
    return (it != links.end() && it->first == child) ? it->second
                                                     : kInvalidNode;
  };

  for (const LidagRoot* rp : chain) {
    const LidagRoot& r = *rp;
    const auto& marg = boundary_dist[static_cast<std::size_t>(r.node)];
    const NodeId parent = parent_of(r.node);
    if (parent == kInvalidNode) {
      install_cpt(lb, r.var, {}, transition_prior(r.var, marg), changed);
      continue;
    }
    const VarId pv = lb.var_of_node[static_cast<std::size_t>(parent)];
    std::array<double, 16> joint{};
    const bool have_joint = pair_joint && pair_joint(parent, r.node, joint);

    std::vector<VarId> scope{std::min(pv, r.var), std::max(pv, r.var)};
    Factor cpt(scope, {4, 4});
    std::vector<int> st(2, 0);
    const std::size_t prev_axis = scope[0] == pv ? 0 : 1;
    const std::size_t cur_axis = 1 - prev_axis;
    for (int sa = 0; sa < 4; ++sa) {
      double row[4];
      double rowsum = 0.0;
      for (int sb = 0; sb < 4; ++sb) {
        row[sb] = have_joint
                      ? joint[static_cast<std::size_t>(sa * 4 + sb)]
                      : marg[static_cast<std::size_t>(sb)];
        rowsum += row[sb];
      }
      for (int sb = 0; sb < 4; ++sb) {
        st[prev_axis] = sa;
        st[cur_axis] = sb;
        // Impossible parent states get an arbitrary (unused) row.
        cpt.at(st) = rowsum > 0.0 ? row[sb] / rowsum
                                  : marg[static_cast<std::size_t>(sb)];
      }
    }
    install_cpt(lb, r.var, {pv}, std::move(cpt), changed);
  }

  for (const LidagRoot& r : lb.grouped_inputs) {
    const InputSpec& spec = model.spec(r.input_index);
    BNS_EXPECTS(opts.model_input_groups && spec.group >= 0);
    const VarId src = lb.bn.parents(r.var).at(0);
    install_cpt(lb, r.var, {src}, noisy_copy_cpt(src, r.var, spec.flip),
                changed);
  }
}

void quantify_lidag(LidagBn& lb, const InputModel& model,
                    std::span<const std::array<double, 4>> boundary_dist,
                    const BoundaryJointFn& pair_joint,
                    const LidagOptions& opts) {
  quantify_impl(lb, model, boundary_dist, pair_joint, opts, nullptr);
}

void quantify_lidag_diff(LidagBn& lb, const InputModel& model,
                         std::span<const std::array<double, 4>> boundary_dist,
                         const BoundaryJointFn& pair_joint,
                         const LidagOptions& opts,
                         std::vector<VarId>& changed) {
  changed.clear();
  quantify_impl(lb, model, boundary_dist, pair_joint, opts, &changed);
}

} // namespace bns
