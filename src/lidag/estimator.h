// The end-to-end switching-activity estimator of the paper: netlist →
// (segmented) LIDAG Bayesian networks → junction-tree compilation →
// propagation → per-line 4-state transition distributions.
//
// Compilation (structure + triangulation) is separated from propagation
// so that re-estimating under different input statistics only pays the
// cheap propagation ("update") cost — the workflow the paper advocates.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "bn/junction_tree.h"
#include "lidag/lidag.h"
#include "netlist/netlist.h"
#include "obs/trace.h"
#include "netlist/transforms.h"
#include "sim/input_model.h"
#include "util/thread_pool.h"
#include "verify/diagnostics.h"
#include "verify/schedule_rules.h"

namespace bns {

enum class SegmentationStrategy {
  // Cut at fixed node-count boundaries (the paper's "preliminary
  // segmentation scheme").
  FixedRange,
  // Cut where the set of live nets crossing the boundary is smallest
  // within a window — fewer forwarded marginals, less correlation loss
  // (the "efficient segmentation technique" the paper announces as
  // future work).
  MinFrontier,
};

struct EstimatorOptions {
  LidagOptions lidag;
  EliminationHeuristic heuristic = EliminationHeuristic::MinFill;
  SegmentationStrategy segmentation = SegmentationStrategy::MinFrontier;
  // Junction-tree state-space budget per segment (sum over cliques of
  // the clique table sizes). A segment exceeding it is split in half and
  // recompiled. 4^10 * 16 ≈ 16.8M doubles ≈ 134 MB worst case.
  double max_segment_states = 4.0e6;
  // Initial segmentation chunk size in netlist nodes. Circuits with at
  // most `single_bn_nodes` lines are first attempted as one BN.
  int segment_nodes = 140;
  int single_bn_nodes = 320;
  // Overlap window: each segment rebuilds this many preceding nodes as
  // internal context so that correlations among nets just behind the cut
  // are re-derived locally instead of being broken into independent
  // marginals. 0 disables overlap (the paper's preliminary scheme).
  int segment_overlap = 64;
  // Static checks (src/verify/) run after compilation: Fast lints the
  // netlist and every segment BN, Full additionally lints the compiled
  // junction trees (chordality, running intersection, family cover),
  // Schedule additionally proves the compiled propagation schedules
  // race-free / reload-sound and bounds their numerical risk (SC*).
  // Error-severity findings make the constructor throw.
  VerifyLevel verify = VerifyLevel::Off;
  // Worker threads for estimate(): segments whose forwarded boundary
  // marginals are already available propagate concurrently, and a lone
  // segment hands the pool to its junction-tree engine (independent
  // components/subtrees in parallel). Results are bit-identical to the
  // sequential run for any thread count. 0 = use the BNS_THREADS
  // environment variable when set, else 1; 1 = fully sequential.
  int num_threads = 0;
  // Observability (src/obs/): spans for every compile stage (lidag,
  // moralize, triangulate, junction_tree, schedule) and for the update
  // path (load, propagate), plus pipeline counters. Null = off. At
  // TraceLevel::Counters the scheduled update path stays allocation-
  // and lock-free (see DESIGN.md "Observability").
  obs::Tracer* trace = nullptr;
};

// Compile-time accounting, fixed once the constructor returns. The
// one-stop replacement for the former scattered accessors
// (compile_seconds() & friends, removed after their deprecation cycle).
struct CompileStats {
  double compile_seconds = 0.0;       // whole constructor, wall clock
  double schedule_build_seconds = 0.0; // of which: propagation schedules
  int num_segments = 0;
  double total_state_space = 0.0;     // sum of segment junction trees
  std::size_t max_clique_vars = 0;    // largest clique over all segments
  int total_bn_variables = 0;         // incl. decomposition auxiliaries
  std::uint64_t fill_edges = 0;       // triangulation fill-in, kept segments
};

// Per-estimate accounting, embedded in SwitchingEstimate::stats. The
// paper's "update" cost is propagate_seconds; reload_seconds is the
// CPT re-quantification + potential reload share of it (summed across
// segments, so it can exceed wall time under threading).
struct EstimateStats {
  double propagate_seconds = 0.0;  // whole estimate() sweep, wall clock
  double reload_seconds = 0.0;     // quantify + load_potentials, summed
  std::uint64_t messages_passed = 0; // separator messages, all segments
  int threads_used = 1;            // resolved worker-thread count
};

// Batch accounting for estimate_batch: how much work the incremental
// reload actually avoided across the sweep.
struct BatchStats {
  int scenarios = 0;
  int segments_reloaded = 0; // re-quantified + re-propagated
  int segments_skipped = 0;  // left untouched (root CPTs bitwise unchanged)
  // Clique-level frontier accounting, summed over segment engines:
  // cliques memcpy-restored instead of re-running their CPT load
  // programs, and separator messages restored or skipped instead of
  // recomputed (JunctionTreeEngine::reload_incremental / propagate).
  std::uint64_t cliques_restored = 0;
  std::uint64_t messages_skipped = 0;
  double total_seconds = 0.0; // whole batch, wall clock
};

struct SwitchingEstimate {
  // Per-line transition distribution, indexed by NodeId. Auxiliary
  // decomposition variables are internal and not reported.
  std::vector<std::array<double, 4>> dist;
  // Per-estimate accounting; stats.propagate_seconds is the paper's
  // "update" time.
  EstimateStats stats;

  std::vector<double> activities() const;
  double activity(NodeId id) const;
  // Average switching activity over all lines.
  double average_activity() const;
};

// Read-only view of one compiled segment: the LIDAG BN, its line range
// in the inner (cone-reordered) netlist, and the engine's compiled
// introspection surface.
struct CompiledSegmentView {
  const LidagBn* lidag = nullptr;
  NodeId begin = 0;
  NodeId end = 0;
  CompiledEngineView engine;
};

// Everything the compiled estimator exposes read-only — the single
// introspection surface both the SC* static analyzer and the artifact
// serializer (src/artifact/) consume. Obtained from
// LidagEstimator::compiled_view(); spans and pointers borrow from the
// estimator and are valid for its lifetime.
struct CompiledModelView {
  const Netlist* netlist = nullptr;       // original, caller-owned
  const MappedNetlist* inner = nullptr;   // cone-reordered working copy
  std::span<const int> input_perm;        // inner input pos -> original
  int num_input_groups = 0;
  const EstimatorOptions* options = nullptr;
  const CompileStats* stats = nullptr;
  std::vector<CompiledSegmentView> segments;
};

class LidagEstimator {
 public:
  // Builds and compiles all segment BNs. `model` provides the input
  // *structure* (grouping); statistics may differ between estimate()
  // calls as long as the grouping layout matches.
  LidagEstimator(const Netlist& nl, const InputModel& model,
                 EstimatorOptions opts = {});

  // --- artifact restore (src/artifact/) -------------------------------
  // One deserialized segment: the LIDAG BN plus the engine compilation
  // to install via JunctionTreeEngine's restore constructor.
  struct RestoredSegment {
    std::unique_ptr<LidagBn> lidag;
    NodeId begin = 0;
    NodeId end = 0;
    JunctionTreeEngine::RestoredCompilation engine;
  };
  // The full compiled state as deserialized from a .bnsc artifact.
  // `support_` (used only to pick boundary links at compile time) is
  // intentionally absent: restored estimators never recompile.
  struct RestoredModel {
    MappedNetlist inner;
    std::vector<int> input_perm;
    int num_input_groups = 0;
    CompileStats stats;
    std::vector<RestoredSegment> segments;
  };
  // Rebuilds a compiled estimator from deserialized parts without
  // recompiling (no cone reorder, no triangulation, no schedule build).
  // `opts` supplies runtime knobs (threads, trace, verify); the
  // compile-time options (lidag/segmentation) must be the ones the
  // artifact recorded, or quantification will not match the compiled
  // structure. The artifact loader enforces this.
  LidagEstimator(const Netlist& nl, RestoredModel parts,
                 EstimatorOptions opts = {});

  // Propagates the given input statistics through all segments.
  SwitchingEstimate estimate(const InputModel& model);

  // --- scenario-sweep batch API --------------------------------------
  // Runs N input-statistics scenarios over the one compiled estimator.
  // Scenarios execute in order; between consecutive scenarios only the
  // segments whose root CPTs (including forwarded boundary marginals
  // and pairwise joints) actually changed are re-quantified and
  // re-propagated, via JunctionTreeEngine::reload_incremental — every
  // other segment keeps its previous potentials and per-line results,
  // which are bitwise exact because all inputs to its computation are
  // unchanged. The returned estimates are bit-identical to calling
  // estimate() once per scenario, at any thread count. The sweep state
  // persists across calls, so a later batch continues diffing against
  // the last loaded scenario (estimate()/conditional_dist reset it).
  std::vector<SwitchingEstimate> estimate_batch(
      std::span<const InputModel> models);
  // Preallocated-output variant: outputs.size() must equal
  // models.size(). After a warm-up call with the same shapes, a sweep
  // whose scenarios all match the loaded statistics runs without heap
  // allocation.
  BatchStats estimate_batch_into(std::span<const InputModel> models,
                                 std::span<SwitchingEstimate> outputs);

  // Owning segment index of an original-netlist line (for per-segment
  // error attribution in the accuracy audit), or -1 when the line is
  // outside every segment.
  int segment_of_line(NodeId id) const;

  // Conditional switching query — the capability unique to the BN model
  // (the paper's advantage #4: conditional independencies are modeled,
  // so posteriors under observations come for free): the transition
  // distribution of line `target` given hard evidence that line `given`
  // is in transition state `state`. Returns nullopt when the two lines
  // are not modeled in the same segment BN (cross-segment conditionals
  // would need the joint that segmentation gave up) or when the
  // evidence has probability 0.
  std::optional<std::array<double, 4>> conditional_dist(
      NodeId target, NodeId given, Trans state, const InputModel& model);

  // --- compile-time diagnostics --------------------------------------
  // All compile-time accounting in one value struct.
  const CompileStats& compile_stats() const { return stats_; }
  // Resolved worker-thread count (after BNS_THREADS / option defaulting).
  int num_threads() const { return pool_ ? pool_->num_threads() : 1; }
  int num_segments() const { return static_cast<int>(segments_.size()); }
  bool single_bn() const { return segments_.size() == 1; }
  // Per-segment structures, for external inspection and verification.
  const LidagBn& segment_lidag(int i) const;
  const JunctionTreeEngine& segment_engine(int i) const;
  // The single read-only introspection surface over the compiled model
  // (see CompiledModelView above) — what the SC* analyzer and the
  // artifact serializer consume.
  CompiledModelView compiled_view() const;

  // Runs the static checkers over the netlist and all compiled segments
  // at the given level (see EstimatorOptions::verify) and returns the
  // findings without throwing.
  DiagnosticReport verify(VerifyLevel level) const;

  // Abstraction of the batch dirty pre-screen (segment_maybe_dirty) for
  // the SC007 static check: every trigger that can mark a segment dirty,
  // with the flag-vector domains it indexes. lint_dirty_screen proves
  // the screen an over-approximation of the reachable segments.
  SegmentScreenModel screen_model() const;

  const Netlist& netlist() const { return *nl_; }

 private:
  struct Segment {
    // Heap-allocated: the engine keeps a pointer into the contained
    // BayesianNetwork, so its address must survive vector reallocation.
    std::unique_ptr<LidagBn> lidag;
    std::unique_ptr<JunctionTreeEngine> engine;
    NodeId begin = 0;
    NodeId end = 0;
    // Quantify + load seconds of this segment's last run_segment; each
    // segment is written by exactly one thread per sweep, so plain
    // doubles summed afterwards need no synchronization.
    double last_reload_seconds = 0.0;
    // Scratch for quantify_lidag_diff on the batch path (per-segment so
    // same-level segments diff concurrently); capacity persists across
    // scenarios.
    std::vector<VarId> changed_vars;
  };

  // Compiles [begin, end); splits on state-space blowup.
  void compile_range(NodeId begin, NodeId end, const InputModel& model);

  // frontier[p] = number of live nets crossing a cut between node p-1
  // and node p (see SegmentationStrategy::MinFrontier).
  std::vector<int> boundary_frontier() const;

  // Remaps an input model given for the original netlist onto the
  // reordered internal one.
  InputModel permute_inputs(const InputModel& model) const;

  // Picks (child, parent) boundary links for a freshly built segment BN:
  // the parent is the earlier boundary line with the largest shared
  // primary-input support that lives in the same owning segment and
  // shares a clique there (so its exact pairwise joint is available).
  std::vector<std::pair<NodeId, NodeId>> pick_boundary_links(
      const LidagBn& lb) const;

  // Owning (already compiled) segment of an inner line, or nullptr.
  const Segment* owner_of(NodeId inner_node) const;

  // Groups segments into dependency levels: a segment's boundary roots
  // (and forwarded pairwise joints) come from earlier segments, so it
  // can only run once those owners have propagated. Segments within one
  // level are mutually independent and run concurrently.
  void build_segment_levels();
  // Quantify + load + propagate + extract for one segment. With
  // `snapshot`, the freshly loaded potentials are captured for later
  // reload_incremental calls (the batch path).
  void run_segment(Segment& seg, const InputModel& inner_model,
                   std::vector<std::array<double, 4>>& inner_dist,
                   const BoundaryJointFn& pair_joint, bool snapshot = false);
  // The pairwise boundary-joint provider backing quantify_lidag: when
  // two boundary lines were defined in the same earlier segment and
  // share a clique there, their exact pairwise joint is forwarded
  // instead of independent marginals.
  BoundaryJointFn make_pair_joint() const;
  // Full sweep over all segments (level-parallel when a pool exists),
  // writing per-line distributions of the inner netlist.
  void run_full_sweep(const InputModel& inner_model,
                      std::vector<std::array<double, 4>>& inner_dist,
                      bool snapshot);
  // Batch-path helpers: conservative per-segment dirtiness from the
  // per-scenario diff flags, and the incremental quantify/reload/
  // propagate/extract step for one segment.
  bool segment_maybe_dirty(const Segment& seg) const;
  void run_segment_incremental(int i, const InputModel& inner_model,
                               const BoundaryJointFn& pair_joint);

  const Netlist* nl_; // non-owning; must outlive the estimator
  // support_[id] = bitset over primary-input positions in the transitive
  // fanin of inner line id (used to pick boundary links).
  std::vector<std::vector<std::uint64_t>> support_;
  // Internal working copy renumbered into DFS cone order — contiguous
  // segmentation ranges then align with output cones, which is where
  // range cuts lose the least correlation.
  MappedNetlist inner_;
  std::vector<int> input_perm_; // inner input position -> original index
  EstimatorOptions opts_;
  std::vector<Segment> segments_;
  // Dependency levels over segments (see build_segment_levels); only
  // built when a pool exists.
  std::vector<std::vector<int>> seg_levels_;
  std::unique_ptr<ThreadPool> pool_;
  CompileStats stats_;
  // Structural input-group count of the construction-time model (the
  // grouping layout estimate() calls must match); sizes the group flag
  // domain of screen_model().
  int num_input_groups_ = 0;

  // --- scenario-sweep state (estimate_batch) -------------------------
  // Valid while batch_primed_: the inner-order input statistics the
  // engines' potentials currently reflect, the per-line distributions
  // of the last executed scenario, and per-scenario diff scratch. All
  // buffers are sized on the first batch call so the all-clean scenario
  // path never touches the heap. estimate() and conditional_dist()
  // reload engines behind the sweep's back, so they drop the priming.
  bool batch_primed_ = false;
  std::vector<InputSpec> loaded_specs_;   // inner input order
  std::vector<GroupSpec> loaded_groups_;
  std::vector<std::array<double, 4>> batch_inner_dist_;
  std::vector<std::uint8_t> spec_changed_;  // per inner input
  std::vector<std::uint8_t> group_changed_; // per group
  std::vector<std::uint8_t> node_changed_;  // inner lines whose dist moved
  std::vector<std::uint8_t> seg_reran_;     // re-propagated this scenario
};

} // namespace bns
