#include "lidag/estimator.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_set>

#include "util/assert.h"
#include "util/timer.h"
#include "verify/compile_rules.h"
#include "verify/model_rules.h"
#include "verify/netlist_rules.h"

namespace bns {

std::vector<double> SwitchingEstimate::activities() const {
  std::vector<double> out(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) out[i] = activity_of(dist[i]);
  return out;
}

double SwitchingEstimate::activity(NodeId id) const {
  BNS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < dist.size());
  return activity_of(dist[static_cast<std::size_t>(id)]);
}

double SwitchingEstimate::average_activity() const {
  BNS_EXPECTS(!dist.empty());
  double s = 0.0;
  for (const auto& d : dist) s += activity_of(d);
  return s / static_cast<double>(dist.size());
}

LidagEstimator::LidagEstimator(const Netlist& nl, const InputModel& model,
                               EstimatorOptions opts)
    : nl_(&nl), inner_(reorder_cone_dfs(nl)), opts_(opts) {
  BNS_EXPECTS(model.num_inputs() == nl.num_inputs());
  obs::Span compile_span(opts_.trace, "compile");
  Timer t;

  // Inner input position -> original input index.
  std::vector<int> pos_of_inner_node(static_cast<std::size_t>(nl.num_nodes()), -1);
  const auto& inner_inputs = inner_.netlist.inputs();
  for (int j = 0; j < static_cast<int>(inner_inputs.size()); ++j) {
    pos_of_inner_node[static_cast<std::size_t>(inner_inputs[static_cast<std::size_t>(j)])] = j;
  }
  input_perm_.assign(inner_inputs.size(), -1);
  for (int i = 0; i < nl.num_inputs(); ++i) {
    const NodeId inner_id =
        inner_.map[static_cast<std::size_t>(nl.inputs()[static_cast<std::size_t>(i)])];
    input_perm_[static_cast<std::size_t>(pos_of_inner_node[static_cast<std::size_t>(inner_id)])] = i;
  }

  const InputModel inner_model = permute_inputs(model);
  num_input_groups_ = model.num_groups();
  const NodeId n = inner_.netlist.num_nodes();
  if (n == 0) return;

  // Primary-input support bitsets, used to pick boundary links.
  {
    const Netlist& inl = inner_.netlist;
    const std::size_t words =
        (static_cast<std::size_t>(inl.num_inputs()) + 63) / 64;
    support_.assign(static_cast<std::size_t>(n),
                    std::vector<std::uint64_t>(words, 0));
    for (int i = 0; i < inl.num_inputs(); ++i) {
      const NodeId id = inl.inputs()[static_cast<std::size_t>(i)];
      support_[static_cast<std::size_t>(id)][static_cast<std::size_t>(i) / 64] |=
          1ULL << (i % 64);
    }
    for (NodeId id = 0; id < n; ++id) {
      auto& sup = support_[static_cast<std::size_t>(id)];
      for (NodeId f : inl.node(id).fanin) {
        const auto& fs = support_[static_cast<std::size_t>(f)];
        for (std::size_t w = 0; w < words; ++w) sup[w] |= fs[w];
      }
    }
  }
  bool done = false;
  if (n <= opts_.single_bn_nodes) {
    // Attempt the whole circuit as one BN; fall back to segmentation if
    // its junction tree blows the state-space budget.
    Segment seg;
    seg.begin = 0;
    seg.end = n;
    {
      obs::Span span(opts_.trace, "lidag");
      seg.lidag = std::make_unique<LidagBn>(
          build_lidag(inner_.netlist, 0, n, inner_model, opts_.lidag));
    }
    CompileOptions copts;
    copts.heuristic = opts_.heuristic;
    copts.trace = opts_.trace;
    seg.engine = std::make_unique<JunctionTreeEngine>(seg.lidag->bn, copts);
    if (seg.engine->state_space() <= opts_.max_segment_states || n <= 1) {
      segments_.push_back(std::move(seg));
      done = true;
    }
  }
  if (!done) {
    // Segment the circuit chunk by chunk with an adaptive chunk size:
    // chunks that had to be split shrink the working size, smooth
    // sailing grows it back toward the configured target.
    const std::vector<int> frontier =
        opts_.segmentation == SegmentationStrategy::MinFrontier
            ? boundary_frontier()
            : std::vector<int>();
    NodeId b = 0;
    int size = opts_.segment_nodes;
    while (b < n) {
      NodeId e;
      if (n - b <= size + size / 2) {
        e = n;
      } else if (frontier.empty()) {
        e = b + size;
      } else {
        // Cut where the live-net frontier is smallest within the window.
        e = b + std::max(1, size / 2);
        for (NodeId p = e; p <= b + size + size / 2; ++p) {
          if (frontier[static_cast<std::size_t>(p)] <=
              frontier[static_cast<std::size_t>(e)]) {
            e = p;
          }
        }
      }
      const int before = static_cast<int>(segments_.size());
      compile_range(b, e, inner_model);
      const int produced = static_cast<int>(segments_.size()) - before;
      if (produced > 1) {
        size = std::max(16, size / 2);
      } else if (size < opts_.segment_nodes) {
        size = std::min(opts_.segment_nodes, size + size / 2);
      }
      b = e;
    }
  }
  const int threads = ThreadPool::resolve_threads(opts_.num_threads);
  if (threads > 1 && !segments_.empty()) {
    pool_ = std::make_unique<ThreadPool>(threads);
    build_segment_levels();
  }
  // Kept segments are prepared eagerly (buffers + propagation
  // schedules), so schedule compilation is accounted to compile_stats()
  // and the very first estimate() already runs the zero-allocation
  // update path.
  for (Segment& seg : segments_) {
    seg.engine->prepare();
    stats_.schedule_build_seconds += seg.engine->schedule_build_seconds();
    stats_.fill_edges += seg.engine->triangulation().fill_edges.size();
    stats_.total_state_space += seg.engine->state_space();
    stats_.max_clique_vars = std::max(
        stats_.max_clique_vars, seg.engine->triangulation().max_clique_size());
    stats_.total_bn_variables += seg.lidag->bn.num_variables();
  }
  stats_.num_segments = num_segments();
  stats_.compile_seconds = t.seconds();

  if (opts_.verify != VerifyLevel::Off) {
    const DiagnosticReport report = verify(opts_.verify);
    if (report.has_errors()) {
      throw std::runtime_error("LIDAG verification failed:\n" +
                               report.render_text());
    }
  }
}

LidagEstimator::LidagEstimator(const Netlist& nl, RestoredModel parts,
                               EstimatorOptions opts)
    : nl_(&nl), inner_(std::move(parts.inner)), opts_(opts) {
  // Restore path (src/artifact/): every compile product is installed
  // from the deserialized parts; only prepare() (buffer allocation) and
  // the thread-pool setup run afresh. support_ stays empty — it is
  // consumed exclusively by pick_boundary_links at compile time.
  if (inner_.map.size() != static_cast<std::size_t>(nl.num_nodes()) ||
      inner_.netlist.num_inputs() != nl.num_inputs()) {
    throw std::runtime_error(
        "restored inner netlist does not match the given netlist");
  }
  input_perm_ = std::move(parts.input_perm);
  if (input_perm_.size() !=
      static_cast<std::size_t>(inner_.netlist.num_inputs())) {
    throw std::runtime_error("restored input permutation has wrong size");
  }
  num_input_groups_ = parts.num_input_groups;
  stats_ = parts.stats;

  segments_.reserve(parts.segments.size());
  NodeId prev_end = 0;
  for (RestoredSegment& rs : parts.segments) {
    if (rs.begin != prev_end || rs.end <= rs.begin ||
        rs.end > inner_.netlist.num_nodes()) {
      throw std::runtime_error(
          "restored segments do not tile the inner netlist");
    }
    prev_end = rs.end;
    Segment seg;
    seg.begin = rs.begin;
    seg.end = rs.end;
    seg.lidag = std::move(rs.lidag);
    CompileOptions copts;
    copts.heuristic = opts_.heuristic;
    copts.trace = opts_.trace;
    seg.engine = std::make_unique<JunctionTreeEngine>(
        seg.lidag->bn, std::move(rs.engine), copts);
    segments_.push_back(std::move(seg));
  }
  if (!segments_.empty() && prev_end != inner_.netlist.num_nodes()) {
    throw std::runtime_error("restored segments do not cover the netlist");
  }

  const int threads = ThreadPool::resolve_threads(opts_.num_threads);
  if (threads > 1 && !segments_.empty()) {
    pool_ = std::make_unique<ThreadPool>(threads);
    build_segment_levels();
  }
  for (Segment& seg : segments_) seg.engine->prepare();

  if (opts_.verify != VerifyLevel::Off) {
    const DiagnosticReport report = verify(opts_.verify);
    if (report.has_errors()) {
      throw std::runtime_error("restored-model verification failed:\n" +
                               report.render_text());
    }
  }
}

CompiledModelView LidagEstimator::compiled_view() const {
  CompiledModelView view;
  view.netlist = nl_;
  view.inner = &inner_;
  view.input_perm = input_perm_;
  view.num_input_groups = num_input_groups_;
  view.options = &opts_;
  view.stats = &stats_;
  view.segments.reserve(segments_.size());
  for (const Segment& seg : segments_) {
    CompiledSegmentView sv;
    sv.lidag = seg.lidag.get();
    sv.begin = seg.begin;
    sv.end = seg.end;
    sv.engine = seg.engine->compiled_view();
    view.segments.push_back(std::move(sv));
  }
  return view;
}

const LidagBn& LidagEstimator::segment_lidag(int i) const {
  BNS_EXPECTS(i >= 0 && i < num_segments());
  return *segments_[static_cast<std::size_t>(i)].lidag;
}

const JunctionTreeEngine& LidagEstimator::segment_engine(int i) const {
  BNS_EXPECTS(i >= 0 && i < num_segments());
  return *segments_[static_cast<std::size_t>(i)].engine;
}

DiagnosticReport LidagEstimator::verify(VerifyLevel level) const {
  DiagnosticReport report;
  if (level == VerifyLevel::Off) return report;
  lint_netlist(*nl_, report);

  for (const Segment& seg : segments_) {
    const LidagBn& lb = *seg.lidag;

    // Root and grouped-input variables carry (possibly placeholder)
    // priors or forwarded conditionals; every other variable is a gate
    // output or a decomposition auxiliary, whose CPT is deterministic.
    std::unordered_set<VarId> non_det;
    std::vector<VarId> root_vars;
    for (const LidagRoot& r : lb.roots) {
      non_det.insert(r.var);
      root_vars.push_back(r.var);
    }
    for (const LidagRoot& r : lb.grouped_inputs) non_det.insert(r.var);

    std::vector<VarId> det_vars;
    for (VarId v = 0; v < lb.bn.num_variables(); ++v) {
      if (!non_det.count(v)) det_vars.push_back(v);
    }
    ModelLintOptions mopts;
    mopts.deterministic_vars = det_vars;
    lint_bayes_net(lb.bn, report, mopts);
    lint_lidag_structure(inner_.netlist, lb.bn, lb.var_of_node, root_vars,
                         report);

    if (level >= VerifyLevel::Full) {
      lint_compilation(lb.bn, seg.engine->triangulation(), seg.engine->tree(),
                       report);
    }
    if (level >= VerifyLevel::Schedule) {
      // The constructor prepares every kept engine, so the compiled
      // schedule is available here; lint_schedule is a no-op otherwise.
      lint_schedule(seg.engine->compiled_view(), report);
    }
  }
  if (level >= VerifyLevel::Schedule) {
    lint_dirty_screen(screen_model(), report);
  }
  return report;
}

SegmentScreenModel LidagEstimator::screen_model() const {
  SegmentScreenModel model;
  model.num_segments = num_segments();
  model.num_specs = inner_.netlist.num_inputs();
  model.num_groups = num_input_groups_;
  model.num_nodes = inner_.netlist.num_nodes();
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const LidagBn& lb = *segments_[i].lidag;
    for (const LidagRoot& r : lb.roots) {
      ScreenRoot sr;
      sr.segment = static_cast<int>(i);
      switch (r.kind) {
        case RootKind::PrimaryInput:
          sr.kind = ScreenTriggerKind::Spec;
          sr.index = r.input_index;
          break;
        case RootKind::Boundary:
          sr.kind = ScreenTriggerKind::Node;
          sr.index = static_cast<int>(r.node);
          break;
        case RootKind::GroupSource:
          sr.kind = ScreenTriggerKind::Group;
          sr.index = r.group;
          break;
        case RootKind::Constant:
          sr.kind = ScreenTriggerKind::Constant;
          break;
      }
      model.roots.push_back(sr);
    }
    for (const LidagRoot& r : lb.grouped_inputs) {
      model.roots.push_back(ScreenRoot{static_cast<int>(i),
                                       ScreenTriggerKind::Spec,
                                       r.input_index});
    }
    for (const auto& [child, parent] : lb.boundary_links) {
      const Segment* owner = owner_of(child);
      // A link with no resolvable owner has no flag to consult — the
      // screen's pairwise-joint trigger is the owner's re-ran bit, so an
      // unresolved owner is itself a gap lint_dirty_screen must see.
      const int owner_seg =
          owner == nullptr ? -1
                           : static_cast<int>(owner - segments_.data());
      model.links.push_back(ScreenLink{static_cast<int>(i), owner_seg});
    }
  }
  return model;
}

std::vector<int> LidagEstimator::boundary_frontier() const {
  const Netlist& nl = inner_.netlist;
  const NodeId n = nl.num_nodes();

  // frontier[p] = number of nets defined before p that are consumed at
  // or after p — the marginals that a cut between p-1 and p forwards.
  std::vector<NodeId> last_use(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) last_use[static_cast<std::size_t>(id)] = id;
  for (NodeId id = 0; id < n; ++id) {
    for (NodeId f : nl.node(id).fanin) {
      last_use[static_cast<std::size_t>(f)] =
          std::max(last_use[static_cast<std::size_t>(f)], id);
    }
  }
  std::vector<int> delta(static_cast<std::size_t>(n) + 2, 0);
  for (NodeId id = 0; id < n; ++id) {
    if (last_use[static_cast<std::size_t>(id)] > id) {
      ++delta[static_cast<std::size_t>(id) + 1];
      --delta[static_cast<std::size_t>(last_use[static_cast<std::size_t>(id)]) + 1];
    }
  }
  std::vector<int> frontier(static_cast<std::size_t>(n) + 1, 0);
  int acc = 0;
  for (NodeId p = 0; p <= n; ++p) {
    acc += delta[static_cast<std::size_t>(p)];
    frontier[static_cast<std::size_t>(p)] = acc;
  }
  return frontier;
}

void LidagEstimator::compile_range(NodeId begin, NodeId end,
                                   const InputModel& model) {
  BNS_EXPECTS(begin < end);
  CompileOptions copts;
  copts.heuristic = opts_.heuristic;
  copts.trace = opts_.trace;

  // Try with the full overlap window, then with progressively smaller
  // windows; only if even a zero-overlap junction tree blows the budget
  // is the range itself split.
  for (int ov = opts_.segment_overlap;; ov /= 4) {
    Segment seg;
    seg.begin = begin;
    seg.end = end;
    const NodeId ctx = std::max<NodeId>(0, begin - ov);
    {
      obs::Span span(opts_.trace, "lidag");
      seg.lidag = std::make_unique<LidagBn>(
          build_lidag(inner_.netlist, ctx, begin, end, model, opts_.lidag));
    }
    if (opts_.lidag.boundary_chain) {
      const auto links = pick_boundary_links(*seg.lidag);
      link_boundary_roots(*seg.lidag, links);
    }
    seg.engine = std::make_unique<JunctionTreeEngine>(seg.lidag->bn, copts);
    if (seg.engine->state_space() <= opts_.max_segment_states ||
        (ov == 0 && end - begin <= 1)) {
      segments_.push_back(std::move(seg));
      return;
    }
    if (ov == 0) break;
  }

  // Split the range and recompile the halves. The boundary-marginal
  // forwarding between the halves loses some correlation — the error
  // source the paper attributes to its segmentation scheme.
  if (opts_.trace != nullptr) {
    opts_.trace->count(obs::Counter::SegmentSplits);
  }
  const NodeId mid = begin + (end - begin) / 2;
  compile_range(begin, mid, model);
  compile_range(mid, end, model);
}

void LidagEstimator::build_segment_levels() {
  const int n = static_cast<int>(segments_.size());
  std::vector<int> level(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const Segment& seg = segments_[static_cast<std::size_t>(i)];
    for (const LidagRoot& r : seg.lidag->roots) {
      if (r.kind != RootKind::Boundary) continue;
      const Segment* owner = owner_of(r.node);
      if (owner == nullptr || owner == &seg) continue;
      const int j = static_cast<int>(owner - segments_.data());
      // Segments are compiled in line order, so owners precede readers.
      BNS_ASSERT(j < i);
      level[static_cast<std::size_t>(i)] = std::max(
          level[static_cast<std::size_t>(i)], level[static_cast<std::size_t>(j)] + 1);
    }
  }
  seg_levels_.clear();
  for (int i = 0; i < n; ++i) {
    const std::size_t l = static_cast<std::size_t>(level[static_cast<std::size_t>(i)]);
    if (seg_levels_.size() <= l) seg_levels_.resize(l + 1);
    seg_levels_[l].push_back(i);
  }
}

void LidagEstimator::run_segment(Segment& seg, const InputModel& inner_model,
                                 std::vector<std::array<double, 4>>& inner_dist,
                                 const BoundaryJointFn& pair_joint,
                                 bool snapshot) {
  Timer reload;
  quantify_lidag(*seg.lidag, inner_model, inner_dist, pair_joint, opts_.lidag);
  seg.engine->load_potentials();
  if (snapshot) seg.engine->snapshot_potentials();
  seg.last_reload_seconds = reload.seconds();
  seg.engine->propagate(pool_.get());
  const auto& nodes = seg.lidag->defined_nodes;
  auto extract = [&](int k) {
    const NodeId id = nodes[static_cast<std::size_t>(k)];
    const VarId v = seg.lidag->var_of_node[static_cast<std::size_t>(id)];
    const Factor m = seg.engine->marginal(v);
    auto& d = inner_dist[static_cast<std::size_t>(id)];
    for (std::size_t s = 0; s < 4; ++s) d[s] = m.value(s);
  };
  if (pool_) {
    pool_->parallel_for(static_cast<int>(nodes.size()), extract);
  } else {
    for (int k = 0; k < static_cast<int>(nodes.size()); ++k) extract(k);
  }
}

BoundaryJointFn LidagEstimator::make_pair_joint() const {
  // Pairwise boundary-joint provider: when two boundary lines were
  // defined in the same earlier segment and share a clique there, their
  // exact pairwise joint is forwarded instead of independent marginals.
  return [this](NodeId a, NodeId b, std::array<double, 16>& joint) {
    // Same-level readers invoke this concurrently against one owner
    // engine. That is race-free without locking: try_joint_marginal is
    // const and purely reading, the owner's potentials were finalized
    // in an earlier dependency level, and the pool barrier between
    // levels provides the happens-before edge from the owner's writes
    // to these reads.
    const Segment* owner = owner_of(a);
    if (owner == nullptr || b < owner->begin || b >= owner->end) return false;
    if (!owner->engine->propagated()) return false;
    const VarId va = owner->lidag->var_of_node[static_cast<std::size_t>(a)];
    const VarId vb = owner->lidag->var_of_node[static_cast<std::size_t>(b)];
    BNS_ASSERT(va >= 0 && vb >= 0);
    const VarId vs[2] = {va, vb};
    const std::optional<Factor> j = owner->engine->try_joint_marginal(vs);
    if (!j.has_value()) return false;
    // Factor scope is sorted by variable id; map to (a, b) order.
    const bool a_first = j->vars()[0] == va;
    std::vector<int> st(2, 0);
    for (int sa = 0; sa < 4; ++sa) {
      for (int sb = 0; sb < 4; ++sb) {
        st[0] = a_first ? sa : sb;
        st[1] = a_first ? sb : sa;
        joint[static_cast<std::size_t>(sa * 4 + sb)] = j->at(st);
      }
    }
    return true;
  };
}

void LidagEstimator::run_full_sweep(
    const InputModel& inner_model,
    std::vector<std::array<double, 4>>& inner_dist, bool snapshot) {
  const BoundaryJointFn pair_joint = make_pair_joint();
  if (pool_ == nullptr) {
    for (Segment& seg : segments_) {
      run_segment(seg, inner_model, inner_dist, pair_joint, snapshot);
    }
    return;
  }
  // Level-parallel sweep: all segments of a level have their boundary
  // inputs ready (owners live in earlier levels) and write disjoint
  // slices of inner_dist, so the result is bit-identical to the
  // sequential loop for any thread count. A single-segment level runs
  // inline so its engine can fan its subtrees out over the pool.
  for (const std::vector<int>& lvl : seg_levels_) {
    pool_->parallel_for(static_cast<int>(lvl.size()), [&](int k) {
      run_segment(segments_[static_cast<std::size_t>(lvl[static_cast<std::size_t>(k)])],
                  inner_model, inner_dist, pair_joint, snapshot);
    });
  }
}

SwitchingEstimate LidagEstimator::estimate(const InputModel& model) {
  BNS_EXPECTS(model.num_inputs() == nl_->num_inputs());
  const InputModel inner_model = permute_inputs(model);
  std::vector<std::array<double, 4>> inner_dist(
      static_cast<std::size_t>(inner_.netlist.num_nodes()));

  obs::Span estimate_span(opts_.trace, "estimate");
  Timer t;
  // A plain estimate reloads every engine behind the sweep bookkeeping's
  // back; the next estimate_batch must re-prime.
  batch_primed_ = false;
  run_full_sweep(inner_model, inner_dist, /*snapshot=*/false);

  SwitchingEstimate out;
  out.dist.resize(static_cast<std::size_t>(nl_->num_nodes()));
  for (NodeId id = 0; id < nl_->num_nodes(); ++id) {
    out.dist[static_cast<std::size_t>(id)] =
        inner_dist[static_cast<std::size_t>(inner_.map[static_cast<std::size_t>(id)])];
  }
  out.stats.propagate_seconds = t.seconds();
  out.stats.threads_used = num_threads();
  for (const Segment& seg : segments_) {
    out.stats.reload_seconds += seg.last_reload_seconds;
    out.stats.messages_passed += seg.engine->messages_per_propagation();
  }
  return out;
}

const LidagEstimator::Segment* LidagEstimator::owner_of(NodeId inner_node) const {
  // Segments cover contiguous ascending [begin, end) line ranges, so
  // the owner is a binary search away — this runs once per boundary
  // root per quantification, where the old linear scan was quadratic in
  // the segment count.
  const auto it = std::partition_point(
      segments_.begin(), segments_.end(),
      [inner_node](const Segment& s) { return s.end <= inner_node; });
  if (it == segments_.end()) return nullptr;
  return (inner_node >= it->begin && inner_node < it->end) ? &*it : nullptr;
}

std::vector<std::pair<NodeId, NodeId>> LidagEstimator::pick_boundary_links(
    const LidagBn& lb) const {
  std::vector<NodeId> boundary;
  for (const LidagRoot& r : lb.roots) {
    if (r.kind == RootKind::Boundary) boundary.push_back(r.node);
  }
  std::sort(boundary.begin(), boundary.end());

  std::vector<std::pair<NodeId, NodeId>> links;
  for (std::size_t i = 1; i < boundary.size(); ++i) {
    const NodeId child = boundary[i];
    const Segment* owner = owner_of(child);
    if (owner == nullptr) continue;
    const VarId cv = owner->lidag->var_of_node[static_cast<std::size_t>(child)];
    if (cv < 0) continue;
    const auto& csup = support_[static_cast<std::size_t>(child)];

    NodeId best = kInvalidNode;
    int best_overlap = 0;
    for (std::size_t j = 0; j < i; ++j) {
      const NodeId cand = boundary[j];
      if (cand < owner->begin || cand >= owner->end) continue;
      const auto& asup = support_[static_cast<std::size_t>(cand)];
      int overlap = 0;
      for (std::size_t w = 0; w < csup.size(); ++w) {
        overlap += std::popcount(csup[w] & asup[w]);
      }
      if (overlap == 0 || overlap < best_overlap) continue;
      const VarId av = owner->lidag->var_of_node[static_cast<std::size_t>(cand)];
      if (av < 0) continue;
      // The pairwise joint must be locally available in the owner.
      const int both[2] = {std::min(av, cv), std::max(av, cv)};
      if (owner->engine->tree().clique_containing_all(both) < 0) continue;
      // >= keeps the latest (closest) candidate on overlap ties.
      best = cand;
      best_overlap = overlap;
    }
    if (best != kInvalidNode && best_overlap > 0) {
      links.emplace_back(child, best);
    }
  }
  return links;
}

std::optional<std::array<double, 4>> LidagEstimator::conditional_dist(
    NodeId target, NodeId given, Trans state, const InputModel& model) {
  BNS_EXPECTS(target >= 0 && target < nl_->num_nodes());
  BNS_EXPECTS(given >= 0 && given < nl_->num_nodes());
  BNS_EXPECTS(target != given);

  // A full unconditional pass populates the boundary marginals the
  // owning segment's quantification needs (and leaves every engine
  // propagated, so the pairwise boundary joints stay available).
  const SwitchingEstimate base = estimate(model);
  (void)base;

  const NodeId it = inner_.map[static_cast<std::size_t>(target)];
  const NodeId ig = inner_.map[static_cast<std::size_t>(given)];
  // Answer only from the segment that *owns* the target line. Overlap
  // windows and boundary forwarding give later segments read-only
  // copies of earlier lines (context rebuilds, forwarded-prior roots);
  // querying the target through such a copy would read a forwarded
  // approximation instead of the defining CPT. If the evidence line has
  // no variable in the owning segment, the exact conditional is not
  // locally available — report that rather than a wrong-segment answer.
  const Segment* own = owner_of(it);
  if (own == nullptr) return std::nullopt;
  Segment& seg = segments_[static_cast<std::size_t>(own - segments_.data())];
  const VarId tv = seg.lidag->var_of_node[static_cast<std::size_t>(it)];
  const VarId gv = seg.lidag->var_of_node[static_cast<std::size_t>(ig)];
  BNS_ASSERT(tv >= 0); // the owner always models its own lines
  if (gv < 0) return std::nullopt;
  // Potentials are already loaded and propagated by estimate();
  // re-load them cleanly, enter the evidence, and re-propagate.
  seg.engine->reset_potentials();
  seg.engine->set_evidence(gv, static_cast<int>(state));
  seg.engine->propagate();
  if (seg.engine->evidence_probability() <= 0.0) return std::nullopt;
  const Factor m = seg.engine->marginal(tv);
  std::array<double, 4> out{};
  for (std::size_t s = 0; s < 4; ++s) out[s] = m.value(s);
  // Restore the unconditional state for subsequent queries.
  seg.engine->reset_potentials();
  seg.engine->propagate();
  return out;
}

int LidagEstimator::segment_of_line(NodeId id) const {
  BNS_EXPECTS(id >= 0 && id < nl_->num_nodes());
  const Segment* s = owner_of(inner_.map[static_cast<std::size_t>(id)]);
  return s == nullptr ? -1 : static_cast<int>(s - segments_.data());
}

bool LidagEstimator::segment_maybe_dirty(const Segment& seg) const {
  for (const LidagRoot& r : seg.lidag->roots) {
    switch (r.kind) {
      case RootKind::PrimaryInput:
        if (spec_changed_[static_cast<std::size_t>(r.input_index)] != 0) {
          return true;
        }
        break;
      case RootKind::Boundary:
        if (node_changed_[static_cast<std::size_t>(r.node)] != 0) return true;
        break;
      case RootKind::Constant:
        break;
      case RootKind::GroupSource:
        if (group_changed_[static_cast<std::size_t>(r.group)] != 0) {
          return true;
        }
        break;
    }
  }
  for (const LidagRoot& r : seg.lidag->grouped_inputs) {
    if (spec_changed_[static_cast<std::size_t>(r.input_index)] != 0) {
      return true;
    }
  }
  // A chained boundary root's CPT also depends on the pairwise joint in
  // the owner, which can move even when both forwarded marginals are
  // unchanged — be conservative whenever the owner re-propagated. The
  // value-level quantify_lidag_diff below then decides exactly.
  for (const auto& [child, parent] : seg.lidag->boundary_links) {
    const Segment* owner = owner_of(child);
    if (owner != nullptr &&
        seg_reran_[static_cast<std::size_t>(owner - segments_.data())] != 0) {
      return true;
    }
  }
  return false;
}

void LidagEstimator::run_segment_incremental(int i,
                                             const InputModel& inner_model,
                                             const BoundaryJointFn& pair_joint) {
  Segment& seg = segments_[static_cast<std::size_t>(i)];
  seg.last_reload_seconds = 0.0;
  if (!segment_maybe_dirty(seg)) return;
  Timer reload;
  quantify_lidag_diff(*seg.lidag, inner_model, batch_inner_dist_, pair_joint,
                      opts_.lidag, seg.changed_vars);
  if (seg.changed_vars.empty()) {
    // False alarm: every recomputed root CPT matched bitwise (e.g. the
    // owner re-propagated to an identical posterior), so the previous
    // propagation results are still exact.
    seg.last_reload_seconds = reload.seconds();
    return;
  }
  seg.engine->reload_incremental(seg.changed_vars);
  seg.last_reload_seconds = reload.seconds();
  seg.engine->propagate(pool_.get());
  seg_reran_[static_cast<std::size_t>(i)] = 1;
  for (const NodeId id : seg.lidag->defined_nodes) {
    const VarId v = seg.lidag->var_of_node[static_cast<std::size_t>(id)];
    const Factor m = seg.engine->marginal(v);
    auto& d = batch_inner_dist_[static_cast<std::size_t>(id)];
    bool moved = false;
    for (std::size_t s = 0; s < 4; ++s) {
      const double fresh = m.value(s);
      moved = moved || fresh != d[s];
      d[s] = fresh;
    }
    // Downstream readers only need to react to lines whose forwarded
    // distribution actually moved — this is what keeps the dirty cone
    // tight when a change dies out inside a segment.
    if (moved) node_changed_[static_cast<std::size_t>(id)] = 1;
  }
}

std::vector<SwitchingEstimate> LidagEstimator::estimate_batch(
    std::span<const InputModel> models) {
  std::vector<SwitchingEstimate> out(models.size());
  estimate_batch_into(models, out);
  return out;
}

BatchStats LidagEstimator::estimate_batch_into(
    std::span<const InputModel> models, std::span<SwitchingEstimate> outputs) {
  BNS_EXPECTS(models.size() == outputs.size());
  BatchStats bs;
  Timer total;
  // Engine counters are cumulative since construction; report the
  // batch's contribution as a delta.
  std::uint64_t restored0 = 0;
  std::uint64_t skipped_msgs0 = 0;
  for (const Segment& seg : segments_) {
    restored0 += seg.engine->cliques_restored();
    skipped_msgs0 += seg.engine->messages_skipped();
  }
  const std::size_t inner_n =
      static_cast<std::size_t>(inner_.netlist.num_nodes());
  if (batch_inner_dist_.size() != inner_n) {
    batch_inner_dist_.assign(inner_n, std::array<double, 4>{});
    node_changed_.assign(inner_n, 0);
    seg_reran_.assign(segments_.size(), 0);
  }

  for (std::size_t sc = 0; sc < models.size(); ++sc) {
    const InputModel& model = models[sc];
    BNS_EXPECTS(model.num_inputs() == nl_->num_inputs());
    obs::Span scenario_span(opts_.trace, "scenario");
    Timer t;
    int reloaded = 0;

    if (!batch_primed_) {
      // Prime: full quantify/load/propagate of every segment, with the
      // loaded potentials snapshotted for later incremental reloads.
      const InputModel inner_model = permute_inputs(model);
      loaded_specs_ = inner_model.specs();
      loaded_groups_ = inner_model.groups();
      spec_changed_.assign(loaded_specs_.size(), 0);
      group_changed_.assign(loaded_groups_.size(), 0);
      run_full_sweep(inner_model, batch_inner_dist_, /*snapshot=*/true);
      batch_primed_ = true;
      reloaded = num_segments();
      std::fill(seg_reran_.begin(), seg_reran_.end(), 1);
    } else {
      // Diff the scenario's statistics against the loaded ones, in
      // inner input order and without constructing the permuted model —
      // an all-clean scenario must not touch the heap.
      BNS_EXPECTS(model.num_groups() ==
                  static_cast<int>(loaded_groups_.size()));
      bool any = false;
      for (std::size_t j = 0; j < loaded_specs_.size(); ++j) {
        const InputSpec& ns = model.spec(input_perm_[j]);
        const InputSpec& os = loaded_specs_[j];
        // The grouping layout is structural (baked into the compiled
        // BNs); only the statistics may vary between scenarios.
        BNS_EXPECTS(ns.group == os.group);
        const bool ch = ns.p != os.p || ns.rho != os.rho || ns.flip != os.flip;
        spec_changed_[j] = ch ? 1 : 0;
        any = any || ch;
      }
      for (std::size_t g = 0; g < loaded_groups_.size(); ++g) {
        const GroupSpec& ng = model.group(static_cast<int>(g));
        const GroupSpec& og = loaded_groups_[g];
        const bool ch = ng.p != og.p || ng.rho != og.rho;
        group_changed_[g] = ch ? 1 : 0;
        any = any || ch;
      }
      if (any) {
        std::fill(node_changed_.begin(), node_changed_.end(), 0);
        std::fill(seg_reran_.begin(), seg_reran_.end(), 0);
        const InputModel inner_model = permute_inputs(model);
        std::copy(inner_model.specs().begin(), inner_model.specs().end(),
                  loaded_specs_.begin());
        std::copy(inner_model.groups().begin(), inner_model.groups().end(),
                  loaded_groups_.begin());
        const BoundaryJointFn pair_joint = make_pair_joint();
        if (pool_ == nullptr) {
          for (int i = 0; i < num_segments(); ++i) {
            run_segment_incremental(i, inner_model, pair_joint);
          }
        } else {
          // Same level structure as the full sweep; a reader's dirtiness
          // check consumes node_changed_/seg_reran_ flags its owners
          // wrote in an earlier level (pool barrier = happens-before).
          for (const std::vector<int>& lvl : seg_levels_) {
            pool_->parallel_for(static_cast<int>(lvl.size()), [&](int k) {
              run_segment_incremental(lvl[static_cast<std::size_t>(k)],
                                      inner_model, pair_joint);
            });
          }
        }
        for (std::size_t i = 0; i < segments_.size(); ++i) {
          if (seg_reran_[i] != 0) ++reloaded;
        }
      } else {
        // Bitwise-identical statistics: every segment keeps its loaded
        // potentials and previous results.
        std::fill(seg_reran_.begin(), seg_reran_.end(), 0);
        for (Segment& seg : segments_) seg.last_reload_seconds = 0.0;
      }
    }

    // Per-scenario output, mapped back to original line numbering.
    SwitchingEstimate& out = outputs[sc];
    out.dist.resize(static_cast<std::size_t>(nl_->num_nodes()));
    for (NodeId id = 0; id < nl_->num_nodes(); ++id) {
      out.dist[static_cast<std::size_t>(id)] = batch_inner_dist_
          [static_cast<std::size_t>(inner_.map[static_cast<std::size_t>(id)])];
    }
    out.stats = EstimateStats{};
    out.stats.propagate_seconds = t.seconds();
    out.stats.threads_used = num_threads();
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      const Segment& seg = segments_[i];
      out.stats.reload_seconds += seg.last_reload_seconds;
      if (!batch_primed_ || seg_reran_[i] != 0) {
        out.stats.messages_passed += seg.engine->messages_per_propagation();
      }
    }

    const int skipped = num_segments() - reloaded;
    ++bs.scenarios;
    bs.segments_reloaded += reloaded;
    bs.segments_skipped += skipped;
    if (opts_.trace != nullptr) {
      opts_.trace->count(obs::Counter::SweepScenarios);
      if (reloaded != 0) {
        opts_.trace->count(obs::Counter::SweepSegmentsReloaded,
                           static_cast<std::uint64_t>(reloaded));
      }
      if (skipped != 0) {
        opts_.trace->count(obs::Counter::SweepSegmentsSkipped,
                           static_cast<std::uint64_t>(skipped));
      }
    }
  }
  for (const Segment& seg : segments_) {
    bs.cliques_restored += seg.engine->cliques_restored();
    bs.messages_skipped += seg.engine->messages_skipped();
  }
  bs.cliques_restored -= restored0;
  bs.messages_skipped -= skipped_msgs0;
  bs.total_seconds = total.seconds();
  return bs;
}

InputModel LidagEstimator::permute_inputs(const InputModel& model) const {
  std::vector<InputSpec> specs(input_perm_.size());
  for (std::size_t j = 0; j < input_perm_.size(); ++j) {
    specs[j] = model.spec(input_perm_[j]);
  }
  return InputModel::custom(std::move(specs), model.groups());
}

} // namespace bns
