#include "lidag/gate_cpt.h"

#include <algorithm>

#include "sim/input_model.h"
#include "util/assert.h"

namespace bns {
namespace {

// Transition-state encoding: state = 2*value(t-1) + value(t), i.e.
// T00=0, T01=1, T10=2, T11=3 — consistent with sim/input_model.h.
int prev_bit(int state) { return state >> 1; }
int cur_bit(int state) { return state & 1; }

} // namespace

Factor transition_cpt(const TruthTable& tt, std::span<const VarId> in_vars,
                      VarId out_var) {
  const int k = tt.num_inputs();
  BNS_EXPECTS(static_cast<int>(in_vars.size()) == k);

  // De-duplicate fanin variables, keeping the position -> unique-index map.
  std::vector<VarId> uniq(in_vars.begin(), in_vars.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  BNS_EXPECTS_MSG(!std::binary_search(uniq.begin(), uniq.end(), out_var),
                  "gate output cannot be its own fanin");
  std::vector<int> pos_of(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    pos_of[static_cast<std::size_t>(i)] = static_cast<int>(
        std::lower_bound(uniq.begin(), uniq.end(),
                         in_vars[static_cast<std::size_t>(i)]) -
        uniq.begin());
  }

  const int m = static_cast<int>(uniq.size());
  std::vector<VarId> scope = uniq;
  scope.push_back(out_var);
  std::sort(scope.begin(), scope.end());
  const std::size_t out_axis = static_cast<std::size_t>(
      std::lower_bound(scope.begin(), scope.end(), out_var) - scope.begin());
  std::vector<std::size_t> axis_of_uniq(static_cast<std::size_t>(m));
  for (int u = 0; u < m; ++u) {
    axis_of_uniq[static_cast<std::size_t>(u)] = static_cast<std::size_t>(
        std::lower_bound(scope.begin(), scope.end(),
                         uniq[static_cast<std::size_t>(u)]) -
        scope.begin());
  }

  Factor f(scope, std::vector<int>(scope.size(), 4));

  std::vector<int> states(scope.size(), 0);
  bool prev_in[TruthTable::kMaxInputs];
  bool cur_in[TruthTable::kMaxInputs];
  const std::uint64_t n_assign = 1ULL << (2 * m); // 4^m
  for (std::uint64_t a = 0; a < n_assign; ++a) {
    // Decode the assignment over unique fanins.
    for (int u = 0; u < m; ++u) {
      states[axis_of_uniq[static_cast<std::size_t>(u)]] =
          static_cast<int>((a >> (2 * u)) & 3);
    }
    for (int i = 0; i < k; ++i) {
      const int s = states[axis_of_uniq[static_cast<std::size_t>(
          pos_of[static_cast<std::size_t>(i)])]];
      prev_in[i] = prev_bit(s) != 0;
      cur_in[i] = cur_bit(s) != 0;
    }
    const int out_prev = tt.eval(std::span<const bool>(prev_in, static_cast<std::size_t>(k))) ? 1 : 0;
    const int out_cur = tt.eval(std::span<const bool>(cur_in, static_cast<std::size_t>(k))) ? 1 : 0;
    states[out_axis] = out_prev * 2 + out_cur;
    f.at(states) = 1.0;
  }
  return f;
}

Factor transition_cpt(GateType type, std::span<const VarId> in_vars,
                      VarId out_var) {
  return transition_cpt(
      TruthTable::of_gate(type, static_cast<int>(in_vars.size())), in_vars,
      out_var);
}

Factor transition_prior(VarId v, const std::array<double, 4>& dist) {
  Factor f({v}, {4});
  for (std::size_t s = 0; s < 4; ++s) f.set_value(s, dist[s]);
  return f;
}

Factor noisy_copy_cpt(VarId source_var, VarId input_var, double flip) {
  BNS_EXPECTS(source_var != input_var);
  BNS_EXPECTS(flip >= 0.0 && flip <= 0.5);
  std::vector<VarId> scope{source_var, input_var};
  std::sort(scope.begin(), scope.end());
  Factor f(scope, {4, 4});
  std::vector<int> states(2, 0);
  const std::size_t src_axis = scope[0] == source_var ? 0 : 1;
  const std::size_t in_axis = 1 - src_axis;
  for (int ss = 0; ss < 4; ++ss) {
    for (int xs = 0; xs < 4; ++xs) {
      const double f_prev =
          (prev_bit(ss) == prev_bit(xs)) ? (1.0 - flip) : flip;
      const double f_cur = (cur_bit(ss) == cur_bit(xs)) ? (1.0 - flip) : flip;
      states[src_axis] = ss;
      states[in_axis] = xs;
      f.at(states) = f_prev * f_cur;
    }
  }
  return f;
}

} // namespace bns
