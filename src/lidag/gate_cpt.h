// Conditional probability tables of switching (transition) variables.
//
// Section 4 of the paper: every line is a 4-state variable over
// {x00, x01, x10, x11}; the CPT of a gate-output variable given the
// gate-input variables is *deterministic* and fully determined by the
// gate function applied independently at t-1 and t. E.g. for an OR gate,
// P(out = x01 | a = x01, b = x00) = 1.
#pragma once

#include "bn/factor.h"
#include "netlist/truth_table.h"

namespace bns {

// Builds the deterministic transition CPT of a function `tt` whose k
// inputs are BN variables `in_vars` (aligned with the truth-table input
// order) and whose output is `out_var`. All variables have cardinality 4.
//
// Repeated fanin variables are allowed (e.g. AND(a, a)); the CPT is then
// over the de-duplicated scope and remains consistent.
//
// The returned factor's scope is sorted; entries are 0/1.
Factor transition_cpt(const TruthTable& tt, std::span<const VarId> in_vars,
                      VarId out_var);

// Convenience overload for a primitive gate type with n inputs.
Factor transition_cpt(GateType type, std::span<const VarId> in_vars,
                      VarId out_var);

// Prior factor over one 4-state root variable.
Factor transition_prior(VarId v, const std::array<double, 4>& dist);

// CPT of a noisy-copy input given its shared source (both 4-state):
// X_t = S_t xor N_t with i.i.d. P(N = 1) = flip at each time step.
// Used for the spatially-correlated-input extension.
Factor noisy_copy_cpt(VarId source_var, VarId input_var, double flip);

} // namespace bns
