// LIDAG construction (Definition 8 / Theorem 3 of the paper): the
// Bayesian network whose nodes are the 4-state switching variables of
// the circuit lines and whose directed edges run from the switchings of
// a gate's input lines to the switching of its output line.
//
// The builder operates on a contiguous NodeId range of the netlist so
// that the same code serves both single-BN compilation (the full range)
// and the multiple-BN segmentation scheme for large circuits: fanins
// defined outside the range become *root* variables whose priors are the
// marginals forwarded from the segment that defines them.
#pragma once

#include <functional>
#include <vector>

#include "bn/bayes_net.h"
#include "netlist/netlist.h"
#include "sim/input_model.h"

namespace bns {

struct LidagOptions {
  // Associative gates (AND/OR/XOR and their inverted forms) with more
  // fanins than this are decomposed into balanced trees of narrower
  // gates over auxiliary variables ("parent divorcing"). This bounds CPT
  // size at 4^(max_fanin+1) without changing the joint distribution over
  // the original lines.
  int max_fanin = 4;
  // Hard cap for non-decomposable functions (LUTs); a LUT wider than
  // this raises std::invalid_argument.
  int max_lut_fanin = 8;
  // When true and the input model has shared-source groups, a hidden
  // source variable per group is added and grouped inputs become noisy
  // copies of it (the paper's future-work input spatial correlation).
  bool model_input_groups = true;
  // When true, the boundary roots of a segment are linked into a Markov
  // chain (in circuit-line order) so that *pairwise* joints computed in
  // the defining segment can be forwarded instead of bare marginals —
  // strictly more of the cross-boundary correlation survives the cut.
  bool boundary_chain = true;
};

// Why a root variable exists in a segment BN.
enum class RootKind {
  PrimaryInput, // a PI of the circuit; prior = input model distribution
  Boundary,     // defined in an earlier segment; prior = forwarded marginal
  Constant,     // constant line; degenerate prior
  GroupSource,  // hidden shared source of an input group
};

struct LidagRoot {
  VarId var = 0;
  RootKind kind = RootKind::PrimaryInput;
  NodeId node = kInvalidNode; // circuit line (PI/boundary/const); -1 for sources
  int group = -1;             // group id for GroupSource roots
  int input_index = -1;       // PI index into InputModel for PrimaryInput roots
};

struct LidagBn {
  BayesianNetwork bn;
  // Global NodeId -> variable id in `bn`, or -1 when the line is not
  // represented in this segment.
  std::vector<VarId> var_of_node;
  std::vector<LidagRoot> roots;
  // Grouped PIs additionally carry a noisy-copy CPT that depends on the
  // input model's flip probability; recorded for re-quantification.
  std::vector<LidagRoot> grouped_inputs;
  // Original (non-auxiliary) lines whose CPT/prior lives in this
  // segment, i.e. whose posterior marginal this segment owns.
  std::vector<NodeId> defined_nodes;
  // (child, parent) links among Boundary roots installed by
  // link_boundary_roots(); quantify_lidag turns each into a conditional
  // CPT built from the forwarded pairwise joint.
  std::vector<std::pair<NodeId, NodeId>> boundary_links;
  int num_aux = 0; // decomposition variables
};

// Builds the LIDAG BN for netlist nodes with begin <= id < end.
// `model` is consulted only for its *structure* (which inputs are
// grouped); all priors are placeholders until quantify() is called.
//
// `context_begin` (<= begin) opens an overlap window: nodes in
// [context_begin, begin) that lie in the transitive fanin of the segment
// are rebuilt *inside* this BN — with their own CPTs, so correlations
// among them are re-derived locally — but their marginals remain owned
// by the segment that defines them (they are not in defined_nodes).
// Root variables are created only for fanins outside the rebuilt
// context. context_begin == begin disables the overlap.
LidagBn build_lidag(const Netlist& nl, NodeId context_begin, NodeId begin,
                    NodeId end, const InputModel& model,
                    const LidagOptions& opts = {});

inline LidagBn build_lidag(const Netlist& nl, NodeId begin, NodeId end,
                           const InputModel& model,
                           const LidagOptions& opts = {}) {
  return build_lidag(nl, begin, begin, end, model, opts);
}

// Convenience: the whole circuit as a single BN.
LidagBn build_lidag(const Netlist& nl, const InputModel& model,
                    const LidagOptions& opts = {});

// Installs directed links parent -> child between Boundary roots (both
// must be Boundary roots of `lb`; parent's line must precede child's).
// Call before compiling the BN into a junction tree: the links become
// part of the DAG. Each child may appear in at most one link.
void link_boundary_roots(LidagBn& lb,
                         std::span<const std::pair<NodeId, NodeId>> links);

// Supplies the joint distribution over two boundary lines (a before b in
// line order), as joint[sa * 4 + sb]. Returns false when the exact joint
// is not available (different owning segments / no shared clique) — the
// caller then falls back to the product of marginals.
using BoundaryJointFn =
    std::function<bool(NodeId a, NodeId b, std::array<double, 16>& joint)>;

// (Re-)loads the numerical priors of `lb` from the input model and the
// forwarded boundary marginals. `boundary_dist[node]` must hold the
// 4-state distribution of every Boundary root's line. When the LIDAG was
// built with boundary_chain and `pair_joint` is non-null, chained
// boundary roots get conditional CPTs derived from the pairwise joints.
void quantify_lidag(LidagBn& lb, const InputModel& model,
                    std::span<const std::array<double, 4>> boundary_dist,
                    const BoundaryJointFn& pair_joint = nullptr,
                    const LidagOptions& opts = {});

// Incremental variant for the scenario-sweep path: recomputes every
// root CPT exactly as quantify_lidag would, but installs only those
// whose values differ bitwise from the ones currently in `lb.bn`,
// recording the installed VarIds in `changed` (cleared first). After
// the call `lb` is bitwise identical to what the full quantify_lidag
// would have produced; an empty `changed` certifies that nothing about
// this segment's priors moved and its previous propagation results are
// still exact.
void quantify_lidag_diff(LidagBn& lb, const InputModel& model,
                         std::span<const std::array<double, 4>> boundary_dist,
                         const BoundaryJointFn& pair_joint,
                         const LidagOptions& opts,
                         std::vector<VarId>& changed);

} // namespace bns
