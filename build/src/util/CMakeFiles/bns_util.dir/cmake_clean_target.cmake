file(REMOVE_RECURSE
  "libbns_util.a"
)
