# Empty dependencies file for bns_util.
# This may be replaced when dependencies are built.
