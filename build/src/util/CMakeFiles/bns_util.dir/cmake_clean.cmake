file(REMOVE_RECURSE
  "CMakeFiles/bns_util.dir/assert.cpp.o"
  "CMakeFiles/bns_util.dir/assert.cpp.o.d"
  "CMakeFiles/bns_util.dir/rng.cpp.o"
  "CMakeFiles/bns_util.dir/rng.cpp.o.d"
  "CMakeFiles/bns_util.dir/stats.cpp.o"
  "CMakeFiles/bns_util.dir/stats.cpp.o.d"
  "CMakeFiles/bns_util.dir/strings.cpp.o"
  "CMakeFiles/bns_util.dir/strings.cpp.o.d"
  "CMakeFiles/bns_util.dir/table.cpp.o"
  "CMakeFiles/bns_util.dir/table.cpp.o.d"
  "CMakeFiles/bns_util.dir/timer.cpp.o"
  "CMakeFiles/bns_util.dir/timer.cpp.o.d"
  "libbns_util.a"
  "libbns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
