file(REMOVE_RECURSE
  "libbns_baselines.a"
)
