# Empty compiler generated dependencies file for bns_baselines.
# This may be replaced when dependencies are built.
