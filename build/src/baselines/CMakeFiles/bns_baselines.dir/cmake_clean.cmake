file(REMOVE_RECURSE
  "CMakeFiles/bns_baselines.dir/correlation.cpp.o"
  "CMakeFiles/bns_baselines.dir/correlation.cpp.o.d"
  "CMakeFiles/bns_baselines.dir/independence.cpp.o"
  "CMakeFiles/bns_baselines.dir/independence.cpp.o.d"
  "CMakeFiles/bns_baselines.dir/local_bdd.cpp.o"
  "CMakeFiles/bns_baselines.dir/local_bdd.cpp.o.d"
  "CMakeFiles/bns_baselines.dir/monte_carlo.cpp.o"
  "CMakeFiles/bns_baselines.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/bns_baselines.dir/transition_density.cpp.o"
  "CMakeFiles/bns_baselines.dir/transition_density.cpp.o.d"
  "libbns_baselines.a"
  "libbns_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bns_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
