
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/correlation.cpp" "src/baselines/CMakeFiles/bns_baselines.dir/correlation.cpp.o" "gcc" "src/baselines/CMakeFiles/bns_baselines.dir/correlation.cpp.o.d"
  "/root/repo/src/baselines/independence.cpp" "src/baselines/CMakeFiles/bns_baselines.dir/independence.cpp.o" "gcc" "src/baselines/CMakeFiles/bns_baselines.dir/independence.cpp.o.d"
  "/root/repo/src/baselines/local_bdd.cpp" "src/baselines/CMakeFiles/bns_baselines.dir/local_bdd.cpp.o" "gcc" "src/baselines/CMakeFiles/bns_baselines.dir/local_bdd.cpp.o.d"
  "/root/repo/src/baselines/monte_carlo.cpp" "src/baselines/CMakeFiles/bns_baselines.dir/monte_carlo.cpp.o" "gcc" "src/baselines/CMakeFiles/bns_baselines.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/baselines/transition_density.cpp" "src/baselines/CMakeFiles/bns_baselines.dir/transition_density.cpp.o" "gcc" "src/baselines/CMakeFiles/bns_baselines.dir/transition_density.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdd/CMakeFiles/bns_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/bns_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
