# Empty dependencies file for bns_netlist.
# This may be replaced when dependencies are built.
