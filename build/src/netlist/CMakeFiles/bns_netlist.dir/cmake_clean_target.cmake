file(REMOVE_RECURSE
  "libbns_netlist.a"
)
