file(REMOVE_RECURSE
  "CMakeFiles/bns_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/bns_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/bns_netlist.dir/blif_io.cpp.o"
  "CMakeFiles/bns_netlist.dir/blif_io.cpp.o.d"
  "CMakeFiles/bns_netlist.dir/gate.cpp.o"
  "CMakeFiles/bns_netlist.dir/gate.cpp.o.d"
  "CMakeFiles/bns_netlist.dir/netlist.cpp.o"
  "CMakeFiles/bns_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/bns_netlist.dir/transforms.cpp.o"
  "CMakeFiles/bns_netlist.dir/transforms.cpp.o.d"
  "CMakeFiles/bns_netlist.dir/truth_table.cpp.o"
  "CMakeFiles/bns_netlist.dir/truth_table.cpp.o.d"
  "libbns_netlist.a"
  "libbns_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bns_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
