file(REMOVE_RECURSE
  "CMakeFiles/bns_sim.dir/input_model.cpp.o"
  "CMakeFiles/bns_sim.dir/input_model.cpp.o.d"
  "CMakeFiles/bns_sim.dir/simulator.cpp.o"
  "CMakeFiles/bns_sim.dir/simulator.cpp.o.d"
  "libbns_sim.a"
  "libbns_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bns_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
