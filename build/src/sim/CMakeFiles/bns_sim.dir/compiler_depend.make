# Empty compiler generated dependencies file for bns_sim.
# This may be replaced when dependencies are built.
