file(REMOVE_RECURSE
  "libbns_sim.a"
)
