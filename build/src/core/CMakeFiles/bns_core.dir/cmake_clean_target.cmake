file(REMOVE_RECURSE
  "libbns_core.a"
)
