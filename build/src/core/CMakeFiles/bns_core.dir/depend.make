# Empty dependencies file for bns_core.
# This may be replaced when dependencies are built.
