file(REMOVE_RECURSE
  "CMakeFiles/bns_core.dir/analyzer.cpp.o"
  "CMakeFiles/bns_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/bns_core.dir/experiment.cpp.o"
  "CMakeFiles/bns_core.dir/experiment.cpp.o.d"
  "libbns_core.a"
  "libbns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
