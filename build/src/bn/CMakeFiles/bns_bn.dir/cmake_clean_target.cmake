file(REMOVE_RECURSE
  "libbns_bn.a"
)
