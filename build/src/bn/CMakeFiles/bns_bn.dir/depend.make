# Empty dependencies file for bns_bn.
# This may be replaced when dependencies are built.
