
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bn/bayes_net.cpp" "src/bn/CMakeFiles/bns_bn.dir/bayes_net.cpp.o" "gcc" "src/bn/CMakeFiles/bns_bn.dir/bayes_net.cpp.o.d"
  "/root/repo/src/bn/exact.cpp" "src/bn/CMakeFiles/bns_bn.dir/exact.cpp.o" "gcc" "src/bn/CMakeFiles/bns_bn.dir/exact.cpp.o.d"
  "/root/repo/src/bn/factor.cpp" "src/bn/CMakeFiles/bns_bn.dir/factor.cpp.o" "gcc" "src/bn/CMakeFiles/bns_bn.dir/factor.cpp.o.d"
  "/root/repo/src/bn/graph.cpp" "src/bn/CMakeFiles/bns_bn.dir/graph.cpp.o" "gcc" "src/bn/CMakeFiles/bns_bn.dir/graph.cpp.o.d"
  "/root/repo/src/bn/junction_tree.cpp" "src/bn/CMakeFiles/bns_bn.dir/junction_tree.cpp.o" "gcc" "src/bn/CMakeFiles/bns_bn.dir/junction_tree.cpp.o.d"
  "/root/repo/src/bn/shenoy_shafer.cpp" "src/bn/CMakeFiles/bns_bn.dir/shenoy_shafer.cpp.o" "gcc" "src/bn/CMakeFiles/bns_bn.dir/shenoy_shafer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
