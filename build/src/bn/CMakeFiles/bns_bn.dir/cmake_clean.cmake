file(REMOVE_RECURSE
  "CMakeFiles/bns_bn.dir/bayes_net.cpp.o"
  "CMakeFiles/bns_bn.dir/bayes_net.cpp.o.d"
  "CMakeFiles/bns_bn.dir/exact.cpp.o"
  "CMakeFiles/bns_bn.dir/exact.cpp.o.d"
  "CMakeFiles/bns_bn.dir/factor.cpp.o"
  "CMakeFiles/bns_bn.dir/factor.cpp.o.d"
  "CMakeFiles/bns_bn.dir/graph.cpp.o"
  "CMakeFiles/bns_bn.dir/graph.cpp.o.d"
  "CMakeFiles/bns_bn.dir/junction_tree.cpp.o"
  "CMakeFiles/bns_bn.dir/junction_tree.cpp.o.d"
  "CMakeFiles/bns_bn.dir/shenoy_shafer.cpp.o"
  "CMakeFiles/bns_bn.dir/shenoy_shafer.cpp.o.d"
  "libbns_bn.a"
  "libbns_bn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bns_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
