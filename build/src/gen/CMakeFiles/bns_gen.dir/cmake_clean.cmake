file(REMOVE_RECURSE
  "CMakeFiles/bns_gen.dir/benchmarks.cpp.o"
  "CMakeFiles/bns_gen.dir/benchmarks.cpp.o.d"
  "CMakeFiles/bns_gen.dir/circuits.cpp.o"
  "CMakeFiles/bns_gen.dir/circuits.cpp.o.d"
  "CMakeFiles/bns_gen.dir/generators.cpp.o"
  "CMakeFiles/bns_gen.dir/generators.cpp.o.d"
  "libbns_gen.a"
  "libbns_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bns_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
