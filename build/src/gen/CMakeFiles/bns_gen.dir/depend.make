# Empty dependencies file for bns_gen.
# This may be replaced when dependencies are built.
