file(REMOVE_RECURSE
  "libbns_gen.a"
)
