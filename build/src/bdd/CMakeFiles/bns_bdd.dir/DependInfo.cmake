
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/bdd.cpp" "src/bdd/CMakeFiles/bns_bdd.dir/bdd.cpp.o" "gcc" "src/bdd/CMakeFiles/bns_bdd.dir/bdd.cpp.o.d"
  "/root/repo/src/bdd/bdd_estimator.cpp" "src/bdd/CMakeFiles/bns_bdd.dir/bdd_estimator.cpp.o" "gcc" "src/bdd/CMakeFiles/bns_bdd.dir/bdd_estimator.cpp.o.d"
  "/root/repo/src/bdd/circuit_bdd.cpp" "src/bdd/CMakeFiles/bns_bdd.dir/circuit_bdd.cpp.o" "gcc" "src/bdd/CMakeFiles/bns_bdd.dir/circuit_bdd.cpp.o.d"
  "/root/repo/src/bdd/pair_prob.cpp" "src/bdd/CMakeFiles/bns_bdd.dir/pair_prob.cpp.o" "gcc" "src/bdd/CMakeFiles/bns_bdd.dir/pair_prob.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/bns_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
