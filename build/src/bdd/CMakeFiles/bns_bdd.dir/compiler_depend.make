# Empty compiler generated dependencies file for bns_bdd.
# This may be replaced when dependencies are built.
