file(REMOVE_RECURSE
  "libbns_bdd.a"
)
