file(REMOVE_RECURSE
  "CMakeFiles/bns_bdd.dir/bdd.cpp.o"
  "CMakeFiles/bns_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/bns_bdd.dir/bdd_estimator.cpp.o"
  "CMakeFiles/bns_bdd.dir/bdd_estimator.cpp.o.d"
  "CMakeFiles/bns_bdd.dir/circuit_bdd.cpp.o"
  "CMakeFiles/bns_bdd.dir/circuit_bdd.cpp.o.d"
  "CMakeFiles/bns_bdd.dir/pair_prob.cpp.o"
  "CMakeFiles/bns_bdd.dir/pair_prob.cpp.o.d"
  "libbns_bdd.a"
  "libbns_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bns_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
