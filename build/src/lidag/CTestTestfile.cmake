# CMake generated Testfile for 
# Source directory: /root/repo/src/lidag
# Build directory: /root/repo/build/src/lidag
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
