file(REMOVE_RECURSE
  "CMakeFiles/bns_lidag.dir/estimator.cpp.o"
  "CMakeFiles/bns_lidag.dir/estimator.cpp.o.d"
  "CMakeFiles/bns_lidag.dir/gate_cpt.cpp.o"
  "CMakeFiles/bns_lidag.dir/gate_cpt.cpp.o.d"
  "CMakeFiles/bns_lidag.dir/lidag.cpp.o"
  "CMakeFiles/bns_lidag.dir/lidag.cpp.o.d"
  "libbns_lidag.a"
  "libbns_lidag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bns_lidag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
