file(REMOVE_RECURSE
  "libbns_lidag.a"
)
