# Empty compiler generated dependencies file for bns_lidag.
# This may be replaced when dependencies are built.
