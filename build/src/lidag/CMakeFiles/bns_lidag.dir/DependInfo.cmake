
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lidag/estimator.cpp" "src/lidag/CMakeFiles/bns_lidag.dir/estimator.cpp.o" "gcc" "src/lidag/CMakeFiles/bns_lidag.dir/estimator.cpp.o.d"
  "/root/repo/src/lidag/gate_cpt.cpp" "src/lidag/CMakeFiles/bns_lidag.dir/gate_cpt.cpp.o" "gcc" "src/lidag/CMakeFiles/bns_lidag.dir/gate_cpt.cpp.o.d"
  "/root/repo/src/lidag/lidag.cpp" "src/lidag/CMakeFiles/bns_lidag.dir/lidag.cpp.o" "gcc" "src/lidag/CMakeFiles/bns_lidag.dir/lidag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bn/CMakeFiles/bns_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/bns_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
