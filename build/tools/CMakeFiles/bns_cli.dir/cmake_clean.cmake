file(REMOVE_RECURSE
  "CMakeFiles/bns_cli.dir/bns_cli.cpp.o"
  "CMakeFiles/bns_cli.dir/bns_cli.cpp.o.d"
  "bns"
  "bns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bns_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
