# Empty compiler generated dependencies file for bns_cli.
# This may be replaced when dependencies are built.
