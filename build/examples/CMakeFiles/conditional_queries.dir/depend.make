# Empty dependencies file for conditional_queries.
# This may be replaced when dependencies are built.
