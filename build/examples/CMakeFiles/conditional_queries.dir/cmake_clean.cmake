file(REMOVE_RECURSE
  "CMakeFiles/conditional_queries.dir/conditional_queries.cpp.o"
  "CMakeFiles/conditional_queries.dir/conditional_queries.cpp.o.d"
  "conditional_queries"
  "conditional_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditional_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
