# Empty compiler generated dependencies file for what_if_inputs.
# This may be replaced when dependencies are built.
