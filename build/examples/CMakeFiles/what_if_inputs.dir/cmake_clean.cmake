file(REMOVE_RECURSE
  "CMakeFiles/what_if_inputs.dir/what_if_inputs.cpp.o"
  "CMakeFiles/what_if_inputs.dir/what_if_inputs.cpp.o.d"
  "what_if_inputs"
  "what_if_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
