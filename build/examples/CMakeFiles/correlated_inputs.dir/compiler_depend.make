# Empty compiler generated dependencies file for correlated_inputs.
# This may be replaced when dependencies are built.
