file(REMOVE_RECURSE
  "CMakeFiles/correlated_inputs.dir/correlated_inputs.cpp.o"
  "CMakeFiles/correlated_inputs.dir/correlated_inputs.cpp.o.d"
  "correlated_inputs"
  "correlated_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlated_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
