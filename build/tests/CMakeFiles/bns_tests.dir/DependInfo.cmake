
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/bns_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/bayes_net_test.cpp" "tests/CMakeFiles/bns_tests.dir/bayes_net_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/bayes_net_test.cpp.o.d"
  "/root/repo/tests/bdd_test.cpp" "tests/CMakeFiles/bns_tests.dir/bdd_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/bdd_test.cpp.o.d"
  "/root/repo/tests/benchmarks_test.cpp" "tests/CMakeFiles/bns_tests.dir/benchmarks_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/benchmarks_test.cpp.o.d"
  "/root/repo/tests/estimator_test.cpp" "tests/CMakeFiles/bns_tests.dir/estimator_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/estimator_test.cpp.o.d"
  "/root/repo/tests/extra_baselines_test.cpp" "tests/CMakeFiles/bns_tests.dir/extra_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/extra_baselines_test.cpp.o.d"
  "/root/repo/tests/factor_test.cpp" "tests/CMakeFiles/bns_tests.dir/factor_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/factor_test.cpp.o.d"
  "/root/repo/tests/gate_cpt_test.cpp" "tests/CMakeFiles/bns_tests.dir/gate_cpt_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/gate_cpt_test.cpp.o.d"
  "/root/repo/tests/gate_test.cpp" "tests/CMakeFiles/bns_tests.dir/gate_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/gate_test.cpp.o.d"
  "/root/repo/tests/generators2_test.cpp" "tests/CMakeFiles/bns_tests.dir/generators2_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/generators2_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/bns_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/input_model_test.cpp" "tests/CMakeFiles/bns_tests.dir/input_model_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/input_model_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/bns_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/junction_tree_test.cpp" "tests/CMakeFiles/bns_tests.dir/junction_tree_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/junction_tree_test.cpp.o.d"
  "/root/repo/tests/lidag_test.cpp" "tests/CMakeFiles/bns_tests.dir/lidag_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/lidag_test.cpp.o.d"
  "/root/repo/tests/netlist_test.cpp" "tests/CMakeFiles/bns_tests.dir/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/netlist_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/bns_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/shenoy_shafer_test.cpp" "tests/CMakeFiles/bns_tests.dir/shenoy_shafer_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/shenoy_shafer_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/bns_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/smoke_test.cpp" "tests/CMakeFiles/bns_tests.dir/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/smoke_test.cpp.o.d"
  "/root/repo/tests/transforms_test.cpp" "tests/CMakeFiles/bns_tests.dir/transforms_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/transforms_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/bns_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/bns_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lidag/CMakeFiles/bns_lidag.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bns_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/bns_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/bns_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/bns_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/bns_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
