# Empty compiler generated dependencies file for bns_tests.
# This may be replaced when dependencies are built.
