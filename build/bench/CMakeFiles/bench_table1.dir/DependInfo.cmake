
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1.cpp" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o" "gcc" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/bns_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/bns_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/lidag/CMakeFiles/bns_lidag.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/bns_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bns_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/bns_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
