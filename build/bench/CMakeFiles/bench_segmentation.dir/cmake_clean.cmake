file(REMOVE_RECURSE
  "CMakeFiles/bench_segmentation.dir/bench_segmentation.cpp.o"
  "CMakeFiles/bench_segmentation.dir/bench_segmentation.cpp.o.d"
  "bench_segmentation"
  "bench_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
