# Empty dependencies file for bench_segmentation.
# This may be replaced when dependencies are built.
